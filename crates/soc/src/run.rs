//! The experiment driver: runs one network per core to completion and
//! collects every statistic the evaluation figures consume.

use crate::kernel::{KernelEnv, StepOutcome};
use crate::os::OsState;
use crate::runtime::{read_virt, LayerTiming, NetworkExecution};
use crate::soc::{Soc, SocConfig};
use gemmini_core::dma::DmaStats;
use gemmini_core::metrics::Metrics;
use gemmini_core::trace::{export_chrome_trace, Component, StallCause, Tracer, SOC_TRACE_PID};
use gemmini_core::{AccelError, MemCtx};
use gemmini_dnn::graph::{LayerClass, Network};
use gemmini_mem::json::{FromJson, Json, JsonError, ToJson};
use gemmini_mem::stats::{CycleAttribution, HitMissStats, TrafficStats};
use gemmini_mem::Cycle;
use std::path::Path;

/// Options for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Whether to move real bytes (functional) or only account time.
    pub functional: bool,
    /// Seed for synthetic tensors.
    pub seed: u64,
}

impl RunOptions {
    /// Timing-only run (the mode for full-network figure sweeps).
    pub fn timing() -> Self {
        Self {
            functional: false,
            seed: 0xC0FFEE,
        }
    }

    /// Functionally-exact run (for correctness tests on small networks).
    pub fn functional() -> Self {
        Self {
            functional: true,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-layer cycle report.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Layer class.
    pub class: LayerClass,
    /// Cycles the layer took.
    pub cycles: Cycle,
}

/// Snapshot of one core's translation-system statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationReport {
    /// Total translation requests.
    pub requests: u64,
    /// Private-TLB hit rate (excluding filter hits).
    pub private_hit_rate: f64,
    /// Hit rate including filter-register hits (the paper's 90% metric).
    pub effective_hit_rate: f64,
    /// Filter-register hits.
    pub filter_hits: u64,
    /// Shared-TLB hit rate.
    pub shared_hit_rate: f64,
    /// Full walks taken.
    pub walks: u64,
    /// Mean walk latency in cycles.
    pub mean_walk_cycles: f64,
    /// Consecutive read requests to the same page (paper: 87%).
    pub consecutive_read_same_page: f64,
    /// Consecutive write requests to the same page (paper: 83%).
    pub consecutive_write_same_page: f64,
    /// Windowed miss-rate series: (window start cycle, miss rate).
    pub miss_rate_series: Vec<(Cycle, f64)>,
}

/// One core's report.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreReport {
    /// Which network ran.
    pub network: String,
    /// Total cycles from start to the last layer's completion.
    pub total_cycles: Cycle,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
    /// Translation statistics.
    pub translation: TranslationReport,
    /// DMA traffic.
    pub dma: DmaStats,
    /// MACs performed by the accelerator.
    pub macs: u64,
    /// Context switches taken.
    pub context_switches: u64,
    /// Where every simulated cycle went; buckets sum to `total_cycles`
    /// exactly (see [`CycleAttribution`]).
    pub attribution: CycleAttribution,
    /// Final output bytes (functional runs only).
    pub output: Option<Vec<i8>>,
}

impl CoreReport {
    /// Total cycles spent in layers of one class.
    pub fn class_cycles(&self, class: LayerClass) -> Cycle {
        self.layers
            .iter()
            .filter(|l| l.class == class)
            .map(|l| l.cycles)
            .sum()
    }

    /// Frames (inferences) per second at `clock_ghz`.
    pub fn fps(&self, clock_ghz: f64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            clock_ghz * 1e9 / self.total_cycles as f64
        }
    }
}

/// Shared-L2 statistics for the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Report {
    /// Total L2 accesses.
    pub accesses: u64,
    /// L2 misses.
    pub misses: u64,
    /// Miss rate.
    pub miss_rate: f64,
    /// Dirty writebacks.
    pub writebacks: u64,
}

/// Whole-SoC report.
#[derive(Debug, Clone, PartialEq)]
pub struct SocReport {
    /// Per-core reports, in core order.
    pub cores: Vec<CoreReport>,
    /// Shared-L2 statistics.
    pub l2: L2Report,
    /// Bytes moved over the DRAM channel.
    pub dram_bytes: u64,
    /// Exact shared-L2 hit/miss counters; merge-able across sweep points
    /// via [`HitMissStats::merge`].
    pub l2_stats: HitMissStats,
    /// Exact DRAM-channel traffic counters; merge-able across sweep
    /// points via [`TrafficStats::merge`].
    pub dram_traffic: TrafficStats,
    /// Cycle attribution summed over all cores; merge-able across sweep
    /// points via [`CycleAttribution::merge`].
    pub attribution: CycleAttribution,
}

// --- JSON round-trip -------------------------------------------------------
//
// `SocReport` is the unit persisted per sweep point (checkpoint files,
// `--json` figure output), so every field — including nested reports —
// encodes losslessly: counters stay exact u64s, rates use shortest
// round-trip floats. `decode(encode(x)) == x` holds bit-for-bit; the
// property tests in `crates/soc/tests/properties.rs` enforce it.

fn class_name(class: LayerClass) -> &'static str {
    match class {
        LayerClass::Conv => "conv",
        LayerClass::Matmul => "matmul",
        LayerClass::ResAdd => "resadd",
        LayerClass::Pool => "pool",
        LayerClass::Norm => "norm",
    }
}

fn class_from_name(name: &str) -> Result<LayerClass, JsonError> {
    Ok(match name {
        "conv" => LayerClass::Conv,
        "matmul" => LayerClass::Matmul,
        "resadd" => LayerClass::ResAdd,
        "pool" => LayerClass::Pool,
        "norm" => LayerClass::Norm,
        other => return Err(JsonError::new(format!("unknown layer class '{other}'"))),
    })
}

impl ToJson for LayerReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("class", Json::from(class_name(self.class))),
            ("cycles", Json::from(self.cycles)),
        ])
    }
}

impl FromJson for LayerReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: value.field("name")?.as_str()?.to_string(),
            class: class_from_name(value.field("class")?.as_str()?)?,
            cycles: value.field("cycles")?.as_u64()?,
        })
    }
}

impl ToJson for TranslationReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests)),
            ("private_hit_rate", Json::from(self.private_hit_rate)),
            ("effective_hit_rate", Json::from(self.effective_hit_rate)),
            ("filter_hits", Json::from(self.filter_hits)),
            ("shared_hit_rate", Json::from(self.shared_hit_rate)),
            ("walks", Json::from(self.walks)),
            ("mean_walk_cycles", Json::from(self.mean_walk_cycles)),
            (
                "consecutive_read_same_page",
                Json::from(self.consecutive_read_same_page),
            ),
            (
                "consecutive_write_same_page",
                Json::from(self.consecutive_write_same_page),
            ),
            (
                "miss_rate_series",
                Json::Arr(
                    self.miss_rate_series
                        .iter()
                        .map(|&(c, r)| Json::Arr(vec![Json::from(c), Json::from(r)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for TranslationReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let series = value
            .field("miss_rate_series")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(JsonError::new(
                        "miss-rate point is not a [cycle, rate] pair",
                    ));
                }
                Ok((pair[0].as_u64()?, pair[1].as_f64()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            requests: value.field("requests")?.as_u64()?,
            private_hit_rate: value.field("private_hit_rate")?.as_f64()?,
            effective_hit_rate: value.field("effective_hit_rate")?.as_f64()?,
            filter_hits: value.field("filter_hits")?.as_u64()?,
            shared_hit_rate: value.field("shared_hit_rate")?.as_f64()?,
            walks: value.field("walks")?.as_u64()?,
            mean_walk_cycles: value.field("mean_walk_cycles")?.as_f64()?,
            consecutive_read_same_page: value.field("consecutive_read_same_page")?.as_f64()?,
            consecutive_write_same_page: value.field("consecutive_write_same_page")?.as_f64()?,
            miss_rate_series: series,
        })
    }
}

impl ToJson for CoreReport {
    fn to_json(&self) -> Json {
        // DmaStats lives in `gemmini-core`, which cannot name the JSON
        // traits (no `gemmini-mem` dependency), so its fields are
        // flattened here.
        Json::obj([
            ("network", Json::from(self.network.clone())),
            ("total_cycles", Json::from(self.total_cycles)),
            ("layers", self.layers.to_json()),
            ("translation", self.translation.to_json()),
            (
                "dma",
                Json::obj([
                    ("bytes_in", Json::from(self.dma.bytes_in)),
                    ("bytes_out", Json::from(self.dma.bytes_out)),
                    ("translations", Json::from(self.dma.translations)),
                    (
                        "translation_stall_cycles",
                        Json::from(self.dma.translation_stall_cycles),
                    ),
                ]),
            ),
            ("macs", Json::from(self.macs)),
            ("context_switches", Json::from(self.context_switches)),
            ("attribution", self.attribution.to_json()),
            (
                "output",
                match &self.output {
                    None => Json::Null,
                    Some(bytes) => {
                        Json::Arr(bytes.iter().map(|&b| Json::from(i64::from(b))).collect())
                    }
                },
            ),
        ])
    }
}

impl FromJson for CoreReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let dma = value.field("dma")?;
        let output = match value.field("output")? {
            Json::Null => None,
            arr => Some(
                arr.as_arr()?
                    .iter()
                    .map(|v| {
                        let n = match v {
                            Json::U64(n) => i64::try_from(*n)
                                .map_err(|_| JsonError::new("output byte out of range"))?,
                            Json::I64(n) => *n,
                            other => {
                                return Err(JsonError::new(format!(
                                    "expected integer output byte, got {other:?}"
                                )))
                            }
                        };
                        i8::try_from(n).map_err(|_| JsonError::new("output byte out of i8 range"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(Self {
            network: value.field("network")?.as_str()?.to_string(),
            total_cycles: value.field("total_cycles")?.as_u64()?,
            layers: Vec::<LayerReport>::from_json(value.field("layers")?)?,
            translation: TranslationReport::from_json(value.field("translation")?)?,
            dma: DmaStats {
                bytes_in: dma.field("bytes_in")?.as_u64()?,
                bytes_out: dma.field("bytes_out")?.as_u64()?,
                translations: dma.field("translations")?.as_u64()?,
                translation_stall_cycles: dma.field("translation_stall_cycles")?.as_u64()?,
            },
            macs: value.field("macs")?.as_u64()?,
            context_switches: value.field("context_switches")?.as_u64()?,
            attribution: CycleAttribution::from_json(value.field("attribution")?)?,
            output,
        })
    }
}

impl ToJson for L2Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accesses", Json::from(self.accesses)),
            ("misses", Json::from(self.misses)),
            ("miss_rate", Json::from(self.miss_rate)),
            ("writebacks", Json::from(self.writebacks)),
        ])
    }
}

impl FromJson for L2Report {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            accesses: value.field("accesses")?.as_u64()?,
            misses: value.field("misses")?.as_u64()?,
            miss_rate: value.field("miss_rate")?.as_f64()?,
            writebacks: value.field("writebacks")?.as_u64()?,
        })
    }
}

impl ToJson for SocReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", self.cores.to_json()),
            ("l2", self.l2.to_json()),
            ("dram_bytes", Json::from(self.dram_bytes)),
            ("l2_stats", self.l2_stats.to_json()),
            ("dram_traffic", self.dram_traffic.to_json()),
            ("attribution", self.attribution.to_json()),
        ])
    }
}

impl FromJson for SocReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            cores: Vec::<CoreReport>::from_json(value.field("cores")?)?,
            l2: L2Report::from_json(value.field("l2")?)?,
            dram_bytes: value.field("dram_bytes")?.as_u64()?,
            l2_stats: HitMissStats::from_json(value.field("l2_stats")?)?,
            dram_traffic: TrafficStats::from_json(value.field("dram_traffic")?)?,
            attribution: CycleAttribution::from_json(value.field("attribution")?)?,
        })
    }
}

fn layer_reports(timings: &[LayerTiming]) -> Vec<LayerReport> {
    timings
        .iter()
        .map(|t| LayerReport {
            name: t.name.clone(),
            class: t.class,
            cycles: t.cycles(),
        })
        .collect()
}

/// Runs `nets[i]` on core `i` of an SoC built from `config`, interleaving
/// cores at kernel-step granularity (the core with the smallest local clock
/// steps next), and returns the full report.
///
/// If the `GEMMINI_TRACE` environment variable names a file, the run is
/// traced and a Chrome `trace_event` JSON file is written there on
/// completion (tracing never changes cycle results). For programmatic
/// control of the sink, use [`run_networks_traced`].
///
/// # Errors
///
/// Propagates the first accelerator error (e.g. a page fault) from any core.
///
/// # Panics
///
/// Panics if `nets.len()` differs from the configured core count.
pub fn run_networks(
    config: &SocConfig,
    nets: &[Network],
    options: &RunOptions,
) -> Result<SocReport, AccelError> {
    run_networks_metered(config, nets, options, &Metrics::disabled())
}

/// Like [`run_networks`] (including the `GEMMINI_TRACE` lookup), but with
/// a live-metrics handle: when enabled, every core's engine, scratchpad
/// timing, translation hardware and the shared memory hierarchy record
/// counters and latency histograms into the shared registry. Metrics are
/// pure observation — the returned report is bit-identical to an
/// unmetered run.
///
/// # Errors
///
/// Propagates the first accelerator error (e.g. a page fault) from any core.
///
/// # Panics
///
/// Panics if `nets.len()` differs from the configured core count.
pub fn run_networks_metered(
    config: &SocConfig,
    nets: &[Network],
    options: &RunOptions,
    metrics: &Metrics,
) -> Result<SocReport, AccelError> {
    match std::env::var("GEMMINI_TRACE") {
        Ok(path) if !path.is_empty() => {
            let (tracer, sink) = Tracer::buffered();
            let report = run_networks_observed(config, nets, options, &tracer, metrics)?;
            let events = sink.lock().expect("trace sink lock").take();
            if let Err(e) = export_chrome_trace(Path::new(&path), &events) {
                eprintln!("warning: could not write trace to {path}: {e}");
            }
            Ok(report)
        }
        _ => run_networks_observed(config, nets, options, &Tracer::disabled(), metrics),
    }
}

/// Like [`run_networks`], but with an explicit trace-event sink: when
/// `tracer` is enabled, every core's engine, translation hardware, and the
/// shared memory hierarchy emit spans into it (cores use their core id as
/// the trace pid; shared components use [`SOC_TRACE_PID`]), and the runtime
/// contributes one span per layer. With a [`Tracer::disabled`] tracer this
/// is exactly `run_networks` minus the `GEMMINI_TRACE` environment lookup —
/// cycle results are identical either way.
///
/// # Errors
///
/// Propagates the first accelerator error (e.g. a page fault) from any core.
///
/// # Panics
///
/// Panics if `nets.len()` differs from the configured core count.
pub fn run_networks_traced(
    config: &SocConfig,
    nets: &[Network],
    options: &RunOptions,
    tracer: &Tracer,
) -> Result<SocReport, AccelError> {
    run_networks_observed(config, nets, options, tracer, &Metrics::disabled())
}

/// The fully-instrumented driver behind every `run_networks*` variant:
/// an explicit trace-event sink *and* an explicit live-metrics handle,
/// each independently optional (pass [`Tracer::disabled`] /
/// [`Metrics::disabled`]). Both are pure observation; cycle results are
/// identical in all four on/off combinations.
///
/// # Errors
///
/// Propagates the first accelerator error (e.g. a page fault) from any core.
///
/// # Panics
///
/// Panics if `nets.len()` differs from the configured core count.
pub fn run_networks_observed(
    config: &SocConfig,
    nets: &[Network],
    options: &RunOptions,
    tracer: &Tracer,
    metrics: &Metrics,
) -> Result<SocReport, AccelError> {
    assert_eq!(
        nets.len(),
        config.cores.len(),
        "need exactly one network per core"
    );
    let mut soc = Soc::new(config, options.functional);
    if tracer.enabled() {
        soc.mem.set_tracer(tracer.with_pid(SOC_TRACE_PID));
        for core in &mut soc.cores {
            core.accel.set_tracer(tracer.with_pid(core.id as u64));
            core.translation.set_tracer(tracer.with_pid(core.id as u64));
        }
    }
    if metrics.enabled_registry() {
        soc.mem.set_metrics(metrics.clone());
        for core in &mut soc.cores {
            core.accel.set_metrics(metrics.clone());
            core.translation.set_metrics(metrics.clone());
        }
    }
    let Soc {
        cores,
        mem,
        data,
        frames,
    } = &mut soc;

    let mut execs: Vec<NetworkExecution> = cores
        .iter_mut()
        .zip(nets)
        .map(|(core, net)| {
            NetworkExecution::new(
                net.clone(),
                core.accel.config().clone(),
                &mut core.space,
                frames,
                data.as_mut(),
                options.seed.wrapping_add(core.id as u64),
            )
        })
        .collect();

    let mut os_states: Vec<OsState> = cores.iter().map(|_| OsState::new(config.os)).collect();
    let mut finished = vec![false; cores.len()];

    while finished.iter().any(|f| !f) {
        // Pick the unfinished core with the smallest local clock.
        let idx = (0..cores.len())
            .filter(|&i| !finished[i])
            .min_by_key(|&i| cores[i].accel.now())
            .expect("an unfinished core exists");
        let core = &mut cores[idx];

        // OS events that fired before this core's current time.
        while os_states[idx].due(core.accel.now()) {
            let now = core.accel.now();
            core.accel
                .advance_to(now + core.cpu.context_switch_cycles());
            if os_states[idx].flushes_translation() {
                core.translation.flush();
            }
            os_states[idx].take(core.accel.now());
        }

        let mut env = KernelEnv {
            accel: &mut core.accel,
            cpu: &core.cpu,
            ctx: MemCtx {
                space: &core.space,
                translation: &mut core.translation,
                mem,
                data: data.as_mut(),
                port: core.id,
            },
        };
        if matches!(execs[idx].step(&mut env)?, StepOutcome::Done) {
            finished[idx] = true;
        }
    }

    // Runtime-level layer spans: one per layer, on the core's trace lane.
    if tracer.enabled() {
        for (core, exec) in cores.iter().zip(&execs) {
            let lane = tracer.with_pid(core.id as u64);
            for t in exec.timings() {
                lane.span(
                    Component::Runtime,
                    &t.name,
                    t.start,
                    t.end,
                    StallCause::None,
                );
            }
        }
    }

    // Assemble reports.
    let core_reports: Vec<CoreReport> = cores
        .iter()
        .zip(&execs)
        .zip(&os_states)
        .map(|((core, exec), os)| {
            let t = &core.translation;
            let output = data.as_ref().map(|d| {
                read_virt(&core.space, d, exec.output_va(), exec.output_elements())
                    .iter()
                    .map(|&b| b as i8)
                    .collect()
            });
            CoreReport {
                network: exec.network().name().to_string(),
                total_cycles: core.accel.stats().finish,
                layers: layer_reports(exec.timings()),
                translation: TranslationReport {
                    requests: t.requests(),
                    private_hit_rate: t.private_tlb().stats().hit_rate(),
                    effective_hit_rate: t.effective_hit_rate(),
                    filter_hits: t.filter_hits(),
                    shared_hit_rate: t.shared_tlb().stats().hit_rate(),
                    walks: t.walks_taken(),
                    mean_walk_cycles: t.ptw().mean_walk_cycles(),
                    consecutive_read_same_page: t.consecutive_read_same_page_rate(),
                    consecutive_write_same_page: t.consecutive_write_same_page_rate(),
                    miss_rate_series: t
                        .miss_rate_series()
                        .series()
                        .iter()
                        .map(|p| (p.start_cycle, p.miss_rate()))
                        .collect(),
                },
                dma: *core.accel.dma_stats(),
                macs: core.accel.stats().macs,
                context_switches: os.switches(),
                attribution: core.accel.attribution(),
                output,
            }
        })
        .collect();

    let l2 = soc_l2_report(&soc);
    let l2_stats = *soc.mem.l2().stats();
    let dram_traffic = *soc.mem.dram().stats();
    let mut attribution = CycleAttribution::new();
    for core in &core_reports {
        attribution.merge(&core.attribution);
    }
    Ok(SocReport {
        cores: core_reports,
        l2,
        dram_bytes: dram_traffic.total_bytes(),
        l2_stats,
        dram_traffic,
        attribution,
    })
}

fn soc_l2_report(soc: &Soc) -> L2Report {
    let stats = soc.mem.l2().stats();
    L2Report {
        accesses: stats.accesses(),
        misses: stats.misses(),
        miss_rate: stats.miss_rate(),
        writebacks: soc.mem.l2().writebacks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::reference_forward;
    use gemmini_dnn::graph::{Activation, Layer};
    use gemmini_dnn::zoo;

    #[test]
    fn functional_tiny_cnn_matches_reference_bit_for_bit() {
        let net = zoo::tiny_cnn();
        let report = run_networks(
            &SocConfig::edge_single_core(),
            std::slice::from_ref(&net),
            &RunOptions::functional(),
        )
        .unwrap();
        let got = report.cores[0].output.as_ref().unwrap();
        let want = reference_forward(&net, RunOptions::functional().seed);
        assert_eq!(got.len(), want.len());
        assert_eq!(got, &want, "accelerator output must equal golden model");
        assert!(report.cores[0].total_cycles > 0);
        assert!(report.cores[0].macs > 0);
    }

    #[test]
    fn functional_without_im2col_unit_also_matches() {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel.has_im2col = false;
        let net = zoo::tiny_cnn();
        let report =
            run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::functional()).unwrap();
        let got = report.cores[0].output.as_ref().unwrap();
        let want = reference_forward(&net, RunOptions::functional().seed);
        assert_eq!(got, &want);
    }

    #[test]
    fn timing_only_matches_functional_cycle_count() {
        let net = zoo::tiny_cnn();
        let cfg = SocConfig::edge_single_core();
        let f = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::functional()).unwrap();
        let t = run_networks(&cfg, &[net], &RunOptions::timing()).unwrap();
        assert_eq!(f.cores[0].total_cycles, t.cores[0].total_cycles);
        assert!(t.cores[0].output.is_none());
        // Attribution is observation-only, so both modes classify cycles
        // identically.
        assert_eq!(f.cores[0].attribution, t.cores[0].attribution);
    }

    #[test]
    fn attribution_buckets_sum_to_total_cycles_on_every_core() {
        let report = run_networks(
            &SocConfig::edge_dual_core(),
            &[zoo::tiny_cnn(), zoo::tiny_cnn()],
            &RunOptions::timing(),
        )
        .unwrap();
        let mut merged = gemmini_mem::stats::CycleAttribution::new();
        for core in &report.cores {
            let attr = core.attribution;
            assert_eq!(
                attr.total(),
                core.total_cycles,
                "buckets must sum to the run length: {attr:?}"
            );
            assert!(attr.compute > 0 && attr.load > 0 && attr.store > 0);
            merged.merge(&attr);
        }
        assert_eq!(report.attribution, merged, "SoC rollup is the core fold");
    }

    #[test]
    fn traced_run_emits_spans_without_changing_results() {
        use gemmini_core::trace::{Component, Tracer, SOC_TRACE_PID};
        let cfg = SocConfig::edge_single_core();
        let net = zoo::tiny_cnn();
        let plain = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing()).unwrap();
        let (tracer, sink) = Tracer::buffered();
        let traced = run_networks_traced(
            &cfg,
            std::slice::from_ref(&net),
            &RunOptions::timing(),
            &tracer,
        )
        .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let events = sink.lock().unwrap().take();
        assert!(!events.is_empty());
        // The runtime contributes one span per layer, on the core's lane.
        let runtime_spans = events
            .iter()
            .filter(|e| e.component == Component::Runtime)
            .count();
        assert_eq!(runtime_spans, net.len());
        assert!(events.iter().any(|e| e.pid == 0), "core-0 lane events");
        assert!(
            events.iter().any(|e| e.pid == SOC_TRACE_PID),
            "shared memory-hierarchy events"
        );
    }

    #[test]
    fn metered_run_counts_events_without_changing_results() {
        use gemmini_core::metrics::{Counter, HistKind, Metrics};
        let cfg = SocConfig::edge_single_core();
        let net = zoo::tiny_cnn();
        let plain = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing()).unwrap();
        let (metrics, registry) = Metrics::enabled();
        let metered = run_networks_metered(
            &cfg,
            std::slice::from_ref(&net),
            &RunOptions::timing(),
            &metrics,
        )
        .unwrap();
        assert_eq!(plain, metered, "metrics must not perturb the simulation");
        // Every instrumented component recorded something on a real net.
        assert!(registry.counter(Counter::TilesIssued) > 0);
        assert_eq!(
            registry.counter(Counter::TilesIssued),
            registry.counter(Counter::TilesRetired),
            "every issued tile retires on a successful run"
        );
        assert!(registry.counter(Counter::DmaBursts) > 0);
        assert!(registry.counter(Counter::DmaBytes) > 0);
        assert!(registry.counter(Counter::TlbHits) > 0);
        assert_eq!(
            registry.counter(Counter::TlbMisses),
            plain.cores[0].translation.walks,
            "TLB misses equal the report's walk count"
        );
        assert!(registry.counter(Counter::DramLineFills) > 0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.hist(HistKind::PtwWalkCycles).count,
            plain.cores[0].translation.walks
        );
        assert!(snap.hist(HistKind::DmaBurstCycles).count > 0);
        assert!(snap.hist(HistKind::DramServiceCycles).count > 0);
    }

    #[test]
    fn cpu_im2col_is_slower_than_accelerator_im2col() {
        let net = zoo::tiny_cnn();
        let with_unit = run_networks(
            &SocConfig::edge_single_core(),
            std::slice::from_ref(&net),
            &RunOptions::timing(),
        )
        .unwrap();
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel.has_im2col = false;
        let without = run_networks(&cfg, &[net], &RunOptions::timing()).unwrap();
        assert!(
            without.cores[0].total_cycles > with_unit.cores[0].total_cycles,
            "CPU im2col must cost more: {} vs {}",
            without.cores[0].total_cycles,
            with_unit.cores[0].total_cycles
        );
    }

    #[test]
    fn dual_core_runs_both_networks() {
        let cfg = SocConfig::edge_dual_core();
        let report = run_networks(
            &cfg,
            &[zoo::tiny_cnn(), zoo::tiny_cnn()],
            &RunOptions::timing(),
        )
        .unwrap();
        assert_eq!(report.cores.len(), 2);
        assert!(report.cores.iter().all(|c| c.total_cycles > 0));
        assert!(report.l2.accesses > 0);
    }

    #[test]
    fn dual_core_contention_slows_cores_down() {
        let single = run_networks(
            &SocConfig::edge_single_core(),
            &[zoo::tiny_cnn()],
            &RunOptions::timing(),
        )
        .unwrap();
        let dual = run_networks(
            &SocConfig::edge_dual_core(),
            &[zoo::tiny_cnn(), zoo::tiny_cnn()],
            &RunOptions::timing(),
        )
        .unwrap();
        // Sharing the L2/DRAM should not make anyone faster.
        assert!(dual.cores[0].total_cycles >= single.cores[0].total_cycles);
    }

    #[test]
    fn per_layer_reports_cover_every_layer() {
        let net = zoo::tiny_cnn();
        let layers = net.len();
        let report = run_networks(
            &SocConfig::edge_single_core(),
            &[net],
            &RunOptions::timing(),
        )
        .unwrap();
        assert_eq!(report.cores[0].layers.len(), layers);
        let by_class: Cycle = [
            LayerClass::Conv,
            LayerClass::Matmul,
            LayerClass::ResAdd,
            LayerClass::Pool,
            LayerClass::Norm,
        ]
        .iter()
        .map(|&c| report.cores[0].class_cycles(c))
        .sum();
        let total: Cycle = report.cores[0].layers.iter().map(|l| l.cycles).sum();
        assert_eq!(by_class, total);
    }

    #[test]
    fn os_noise_adds_time_and_switches() {
        use crate::os::OsConfig;
        let quiet = SocConfig::edge_single_core();
        let mut noisy = SocConfig::edge_single_core();
        noisy.os = OsConfig::linux(2_000);
        let net = zoo::tiny_cnn();
        let a = run_networks(&quiet, std::slice::from_ref(&net), &RunOptions::timing()).unwrap();
        let b = run_networks(&noisy, &[net], &RunOptions::timing()).unwrap();
        assert!(b.cores[0].context_switches > 0);
        assert!(b.cores[0].total_cycles > a.cores[0].total_cycles);
    }

    #[test]
    fn translation_stats_are_populated() {
        let report = run_networks(
            &SocConfig::edge_single_core(),
            &[zoo::tiny_cnn()],
            &RunOptions::timing(),
        )
        .unwrap();
        let t = &report.cores[0].translation;
        assert!(t.requests > 0);
        assert!(t.walks > 0);
        assert!(t.private_hit_rate > 0.0);
        assert!(!t.miss_rate_series.is_empty());
    }

    #[test]
    fn matmul_only_network_runs() {
        let mut net = Network::new("mm");
        net.push(
            "fc1",
            Layer::Matmul {
                m: 32,
                k: 64,
                n: 48,
                activation: Activation::Relu,
            },
        );
        net.push(
            "fc2",
            Layer::Matmul {
                m: 32,
                k: 48,
                n: 10,
                activation: Activation::None,
            },
        );
        let report = run_networks(
            &SocConfig::edge_single_core(),
            std::slice::from_ref(&net),
            &RunOptions::functional(),
        )
        .unwrap();
        let want = reference_forward(&net, RunOptions::functional().seed);
        assert_eq!(report.cores[0].output.as_ref().unwrap(), &want);
    }

    #[test]
    #[should_panic(expected = "one network per core")]
    fn network_count_mismatch_panics() {
        let _ = run_networks(
            &SocConfig::edge_dual_core(),
            &[zoo::tiny_cnn()],
            &RunOptions::timing(),
        );
    }
}
