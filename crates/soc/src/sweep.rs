//! Parallel design-space sweep executor with per-point fault isolation.
//!
//! The paper's whole evaluation is a design-space sweep: many
//! [`SocConfig`] points, each simulated independently (Figs. 3–4, 7–9,
//! Table 1). Every point owns its SoC, memory system and address space,
//! so points are embarrassingly parallel — this module executes a batch
//! of named points across a [`std::thread::scope`] worker pool and
//! returns results in deterministic submission order regardless of
//! scheduling.
//!
//! Properties:
//!
//! * **Worker count** comes from the `GEMMINI_THREADS` environment
//!   variable; unset (or `0`) defaults to
//!   [`std::thread::available_parallelism`]. `GEMMINI_THREADS=1` forces
//!   fully serial execution on the caller's thread — bit-identical to
//!   the pre-sweep per-binary loops.
//! * **Fault isolation**: a panic or [`AccelError`] inside one point
//!   becomes an `Err` entry carrying the point's label; the other
//!   points still complete.
//! * **Observability**: each completion emits one progress line to
//!   stderr (`[12/32] private=16 shared=256 4.1s | 53.2s elapsed,
//!   0.23 pts/s, eta 1m27s` — the ETA comes from the p50 of a live
//!   per-point wall histogram) so long sweeps show liveness, throughput
//!   and time remaining. With `opts.status`/`opts.prometheus` set the
//!   executor also maintains a JSON heartbeat file and a Prometheus
//!   exposition (see [`crate::telemetry`]). Per-point
//!   cycle attribution rides along in every [`SocReport`] (and therefore
//!   in each checkpoint line), and `GEMMINI_TRACE` exports a Chrome
//!   trace from any individual run.
//! * **Exact aggregation**: [`merge_memory_stats`] folds per-point
//!   memory counters through [`HitMissStats::merge`] and
//!   [`TrafficStats::merge`], so totals across N parallel shards equal
//!   the serial run's totals exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use std::collections::HashMap;

use crate::checkpoint::{
    compact, debug_fingerprint, Checkpoint, CheckpointEntry, CheckpointWriter, FailedEntry,
};
use crate::prune::{Attributed, PruneDecision, PruneEvidence, PrunePolicy};
use crate::run::{run_networks_metered, RunOptions, SocReport};
use crate::soc::SocConfig;
use crate::telemetry::{
    eta_secs, format_eta, wall_micros, write_heartbeat, write_prometheus, Heartbeat,
    HEARTBEAT_VERSION,
};
use gemmini_core::metrics::{Counter, Gauge, HistKind, Log2Histogram, Metrics};
use gemmini_core::AccelError;
use gemmini_dnn::graph::Network;
use gemmini_mem::json::{FromJson, ToJson};
use gemmini_mem::stats::{HitMissStats, TrafficStats};

/// Environment variable naming the worker count (`0`/unset = all cores).
pub const THREADS_ENV: &str = "GEMMINI_THREADS";

/// Test-only crash hook: when set to `k`, a checkpointed sweep that
/// starts from an empty checkpoint (no resumed points) calls
/// [`std::process::abort`] as its `k+1`-th point begins executing, after
/// `k` completed points have been persisted. A resumed run (any cached
/// point) never crashes, so a supervisor retry that picks the shard back
/// up from its checkpoint runs to completion. The shard supervisor tests
/// and CI use this to simulate a segfault mid-sweep; see also
/// [`crate::shard::CRASH_SHARD_ENV`] for restricting the hook to one
/// shard.
pub const CRASH_AFTER_ENV: &str = "GEMMINI_TEST_CRASH_AFTER";

/// Test-only hang hook: like [`CRASH_AFTER_ENV`], but instead of
/// aborting, the worker thread that begins the `k+1`-th point sleeps
/// forever — a wedged simulation the supervisor's heartbeat-staleness
/// watchdog must detect and kill. Resumed runs (any cached point) never
/// hang, so the post-kill retry completes. Restricted to one shard by
/// [`crate::shard::CRASH_SHARD_ENV`] exactly like the crash hook.
pub const HANG_AFTER_ENV: &str = "GEMMINI_TEST_HANG_AFTER";

/// Process exit code for a sweep that *completed* but recorded one or
/// more first-class point failures (today: `--point-timeout`
/// expirations). Distinct from `1` (retryable error: the sweep did not
/// finish) so supervisors and scripts can tell "done, with casualties"
/// from "try again".
pub const EXIT_RECORDED_FAILURES: i32 = 3;

/// One named point of a design-space sweep: an SoC configuration, the
/// networks to run on it (one per core), and the run options.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Human-readable label, used in progress lines and error entries.
    pub label: String,
    /// The SoC to build.
    pub config: SocConfig,
    /// One network per configured core.
    pub networks: Vec<Network>,
    /// Functional/timing switch and seed.
    pub options: RunOptions,
}

impl DesignPoint {
    /// Creates a point running one network per core of `config`.
    pub fn new(
        label: impl Into<String>,
        config: SocConfig,
        networks: Vec<Network>,
        options: RunOptions,
    ) -> Self {
        Self {
            label: label.into(),
            config,
            networks,
            options,
        }
    }

    /// Creates a timing-mode point replicating `net` across every core
    /// of `config` — the common shape of the figure sweeps.
    pub fn timing(label: impl Into<String>, config: SocConfig, net: &Network) -> Self {
        let nets = vec![net.clone(); config.cores.len()];
        Self::new(label, config, nets, RunOptions::timing())
    }

    /// Stable fingerprint of the point's full configuration (SoC config,
    /// networks, run options — everything except the label). Checkpoint
    /// resume skips a completed point only when both its label and this
    /// fingerprint match, so any edit to the design forces a re-run.
    pub fn fingerprint(&self) -> u64 {
        debug_fingerprint(&(&self.config, &self.networks, &self.options))
    }
}

/// Why one sweep point failed. The rest of the sweep is unaffected.
#[derive(Debug, Clone)]
pub enum SweepError {
    /// The simulation returned a typed accelerator error.
    Accel(AccelError),
    /// The point panicked; the payload's message is preserved.
    Panicked(String),
    /// The point's failure was *recorded* in the checkpoint — today only
    /// `--point-timeout` expirations (reason `"timeout"`) — and is being
    /// served from there on resume instead of wedging the sweep again.
    Recorded(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Accel(e) => write!(f, "accelerator error: {e}"),
            Self::Panicked(msg) => write!(f, "panicked: {msg}"),
            Self::Recorded(reason) => write!(f, "recorded failure: {reason}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Outcome of one sweep point, in submission order.
#[derive(Debug, Clone)]
pub struct SweepResult<T> {
    /// The submitting point's label.
    pub label: String,
    /// The point's report, or why it failed.
    pub outcome: Result<T, SweepError>,
    /// Pure simulation wall-clock: the time `f(item)` took on its
    /// worker, excluding checkpoint encoding and I/O — identical to the
    /// `wall_nanos` persisted in the checkpoint line, so a run and its
    /// later cached replay report the same wall for the same point.
    pub wall: Duration,
    /// Whether the result was served from a checkpoint instead of run.
    pub cached: bool,
    /// Evidence when the point was skipped by attribution-guided
    /// pruning: `outcome` then holds the basis point's report served as
    /// a prediction, not a simulation of this point. `None` for every
    /// point that actually ran.
    pub pruned: Option<PruneEvidence>,
}

impl<T> SweepResult<T> {
    /// Synthesizes a pruned entry: `predicted` is the basis point's
    /// payload served under this point's label, justified by `evidence`.
    pub fn pruned_from(label: impl Into<String>, predicted: T, evidence: PruneEvidence) -> Self {
        Self {
            label: label.into(),
            outcome: Ok(predicted),
            wall: Duration::ZERO,
            cached: false,
            pruned: Some(evidence),
        }
    }

    /// The successful report, if any.
    pub fn ok(&self) -> Option<&T> {
        self.outcome.as_ref().ok()
    }

    /// Unwraps the report, panicking with the point's label on failure.
    ///
    /// # Panics
    ///
    /// Panics if the point failed.
    pub fn expect_ok(&self) -> &T {
        match &self.outcome {
            Ok(t) => t,
            Err(e) => panic!("sweep point '{}' failed: {e}", self.label),
        }
    }
}

/// Execution knobs for a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` means "resolve from `GEMMINI_THREADS`, then
    /// available parallelism".
    pub threads: usize,
    /// Whether to emit per-point progress lines on stderr.
    pub progress: bool,
    /// Where to persist per-point results as newline-delimited JSON
    /// (flushed as points complete); `None` disables persistence.
    pub checkpoint: Option<PathBuf>,
    /// Whether to load `checkpoint` first and skip points it already
    /// holds (matching label + fingerprint). Without `resume`, an
    /// existing checkpoint file is truncated and rewritten.
    pub resume: bool,
    /// Points already completed before this call's first item — folded
    /// into progress-line positions so a 27-cached resume of a 32-point
    /// grid prints `[28/32]`, not `[1/5]`. The checkpointing executor
    /// sets this to its cached-point count; leave at `0` otherwise.
    pub progress_done: usize,
    /// True grid size for progress-line positions; `0` means "the
    /// submitted item count". Set together with `progress_done`.
    pub progress_total: usize,
    /// Attribution-guided pruning policy; `None` (the default) simulates
    /// every point. See [`crate::prune`].
    pub prune: Option<PrunePolicy>,
    /// Of `progress_done`, how many points were served from the
    /// checkpoint — rendered as a `N cached` segment in progress lines.
    pub progress_cached: usize,
    /// Of `progress_done`, how many points were pruned — rendered as a
    /// `M pruned` segment in progress lines.
    pub progress_pruned: usize,
    /// Live-metrics handle: shared with every executed point's
    /// simulation (engine, DMA, scratchpad, TLB, DRAM counters) and with
    /// the executor's own point counters and wall histogram.
    /// [`Metrics::disabled`] (the default) records nothing. Pure
    /// observation — results are bit-identical either way.
    pub metrics: Metrics,
    /// Where to write the live JSON heartbeat ([`Heartbeat`], atomic
    /// temp-file + rename, refreshed on every point completion and every
    /// ~2 s); `None` disables it.
    pub status: Option<PathBuf>,
    /// Where to write the final registry snapshot as Prometheus text
    /// exposition when the sweep ends; `None` disables it.
    pub prometheus: Option<PathBuf>,
    /// Per-point wall-clock budget (`--point-timeout`). When a point
    /// exceeds it, the executor records a first-class `failed:timeout`
    /// checkpoint entry for it, abandons the wedged worker, lets every
    /// other point drain, and exits the process non-zero —
    /// [`EXIT_RECORDED_FAILURES`] when everything else completed, `1`
    /// when it could not — with a terminal failure summary. On resume
    /// the recorded failure is *served* (the point is not re-attempted),
    /// so a deterministic hang cannot wedge the sweep twice. `None` (the
    /// default) never times a point out.
    pub point_timeout: Option<Duration>,
    /// Hung-shard watchdog budget (`--watchdog`), consumed by the
    /// `--shards` supervisor (see [`crate::shard`]): a worker whose
    /// heartbeat `done` count does not advance for this long is killed
    /// and retried from its shard checkpoint. Ignored outside supervise
    /// mode; `None` (the default) disables the watchdog.
    pub watchdog: Option<Duration>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            progress: true,
            checkpoint: None,
            resume: false,
            progress_done: 0,
            progress_total: 0,
            prune: None,
            progress_cached: 0,
            progress_pruned: 0,
            metrics: Metrics::disabled(),
            status: None,
            prometheus: None,
            point_timeout: None,
            watchdog: None,
        }
    }
}

impl SweepOptions {
    /// Default options plus a checkpoint file and resume mode.
    pub fn checkpointed(path: impl Into<PathBuf>, resume: bool) -> Self {
        Self {
            checkpoint: Some(path.into()),
            resume,
            ..Self::default()
        }
    }
}

/// Resolves the worker count for `n_points` work items: an explicit
/// `threads` wins, then `GEMMINI_THREADS`, then available parallelism —
/// always clamped to `[1, n_points]`.
pub fn worker_count(threads: usize, n_points: usize) -> usize {
    let configured = if threads > 0 {
        threads
    } else {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    configured.clamp(1, n_points.max(1))
}

/// Shared live-telemetry state for one sweep call, spanning every
/// execution phase: the per-point wall histogram behind the progress
/// lines' ETA column (always on — it is cheap and local), the executor's
/// point counters, and heartbeat bookkeeping when `opts.status` names a
/// file.
struct Pulse {
    status: Option<PathBuf>,
    prometheus: Option<PathBuf>,
    metrics: Metrics,
    grid_total: usize,
    start: Instant,
    workers: AtomicUsize,
    /// Completions that did not execute in this call: cached + pruned.
    baseline: AtomicUsize,
    cached: AtomicUsize,
    pruned: AtomicUsize,
    /// Points actually simulated here (successes and failures).
    executed: AtomicUsize,
    failed: AtomicUsize,
    wall_hist: Mutex<Log2Histogram>,
    last_beat: Mutex<Instant>,
    stop: AtomicBool,
    /// Per-point wall-clock budget; `None` disables the timeout scan.
    point_timeout: Option<Duration>,
    /// Points currently executing, keyed by ticket — the timeout scan's
    /// prey. Only populated when `point_timeout` is set.
    inflight: Mutex<HashMap<u64, InFlightPoint>>,
    next_ticket: std::sync::atomic::AtomicU64,
    /// Where the timeout monitor records `failed:timeout` entries;
    /// installed by the checkpointing executor once its writer exists.
    writer: Mutex<Option<Arc<CheckpointWriter>>>,
    /// Consecutive monitor ticks during which every in-flight point was
    /// timed out (no worker can make progress) — the exit trigger, held
    /// for two ticks so a worker between claims is not mistaken for a
    /// drained pool.
    hung_stable: AtomicUsize,
}

/// One executing point as seen by the timeout monitor.
struct InFlightPoint {
    label: String,
    fingerprint: u64,
    start: Instant,
    /// Whether the monitor already recorded this point's timeout (the
    /// worker is abandoned, but its entry stays until the process ends).
    recorded: bool,
}

/// Deregisters an in-flight point on drop — panic-safe bracketing for
/// the timeout monitor's table.
struct InFlightGuard<'a> {
    pulse: &'a Pulse,
    ticket: Option<u64>,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.pulse.exit_point(self.ticket.take());
    }
}

impl Pulse {
    fn start(
        opts: &SweepOptions,
        grid_total: usize,
        baseline: usize,
        cached: usize,
        pruned: usize,
    ) -> Arc<Self> {
        let pulse = Arc::new(Self {
            status: opts.status.clone(),
            prometheus: opts.prometheus.clone(),
            metrics: opts.metrics.clone(),
            grid_total,
            start: Instant::now(),
            workers: AtomicUsize::new(1),
            baseline: AtomicUsize::new(baseline),
            cached: AtomicUsize::new(cached),
            pruned: AtomicUsize::new(pruned),
            executed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            wall_hist: Mutex::new(Log2Histogram::new()),
            last_beat: Mutex::new(Instant::now()),
            stop: AtomicBool::new(false),
            point_timeout: opts.point_timeout,
            inflight: Mutex::new(HashMap::new()),
            next_ticket: std::sync::atomic::AtomicU64::new(0),
            writer: Mutex::new(None),
            hung_stable: AtomicUsize::new(0),
        });
        pulse.beat("run");
        pulse
    }

    /// Registers an executing point with the timeout monitor. A no-op
    /// (and `None`) without a `point_timeout`.
    fn enter_point(&self, label: &str, fingerprint: u64) -> Option<u64> {
        self.point_timeout?;
        let ticket = self
            .next_ticket
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inflight.lock().expect("inflight lock").insert(
            ticket,
            InFlightPoint {
                label: label.to_string(),
                fingerprint,
                start: Instant::now(),
                recorded: false,
            },
        );
        Some(ticket)
    }

    /// Deregisters a point that finished (however it finished).
    fn exit_point(&self, ticket: Option<u64>) {
        if let Some(ticket) = ticket {
            self.inflight.lock().expect("inflight lock").remove(&ticket);
        }
    }

    /// Monitor-thread tick: record a `failed:timeout` checkpoint entry
    /// for every in-flight point past its budget, and — once the only
    /// in-flight points left are timed-out ones, so no worker can make
    /// progress — end the process with a terminal failure summary.
    /// Exits [`EXIT_RECORDED_FAILURES`] when everything else in the grid
    /// completed, `1` (retryable) when it could not.
    fn check_timeouts(&self) {
        let Some(budget) = self.point_timeout else {
            return;
        };
        let (hung, active) = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            for p in inflight.values_mut() {
                if !p.recorded && p.start.elapsed() > budget {
                    p.recorded = true;
                    eprintln!(
                        "sweep: point '{}' exceeded --point-timeout ({:.1}s): recording failed:timeout and abandoning its worker",
                        p.label,
                        budget.as_secs_f64()
                    );
                    let entry = FailedEntry {
                        label: p.label.clone(),
                        fingerprint: p.fingerprint,
                        wall: p.start.elapsed(),
                        reason: "timeout".to_string(),
                    };
                    if let Some(w) = self.writer.lock().expect("writer lock").as_ref() {
                        if let Err(e) = w.append_failed(&entry) {
                            eprintln!("sweep: failed to record timeout for '{}': {e}", p.label);
                        }
                    }
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    self.metrics.inc(Counter::PointsFailed);
                }
            }
            let hung = inflight.values().filter(|p| p.recorded).count();
            (hung, inflight.len())
        };
        if hung == 0 || hung < active {
            self.hung_stable.store(0, Ordering::Relaxed);
            return;
        }
        // Every in-flight point is hung. Hold for two consecutive ticks
        // before concluding the pool is drained (a worker may be between
        // claims), then finish loudly.
        if self.hung_stable.fetch_add(1, Ordering::Relaxed) + 1 < 2 {
            return;
        }
        let done = self.done_total();
        let complete = done + hung >= self.grid_total;
        eprintln!(
            "sweep: {hung} point(s) timed out; {done}/{} other points complete; exiting {}",
            self.grid_total,
            if complete {
                format!("{EXIT_RECORDED_FAILURES} (completed with recorded failures)")
            } else {
                "1 (incomplete; resume to finish)".to_string()
            }
        );
        self.beat("done");
        std::process::exit(if complete { EXIT_RECORDED_FAILURES } else { 1 });
    }

    fn done_total(&self) -> usize {
        self.baseline.load(Ordering::Relaxed) + self.executed.load(Ordering::Relaxed)
    }

    /// Folds one executed point in: wall histogram (local + registry),
    /// point counters, and a heartbeat refresh.
    fn record_point(&self, wall: Duration, ok: bool) {
        let micros = wall_micros(wall);
        self.wall_hist
            .lock()
            .expect("wall histogram lock")
            .record(micros);
        self.metrics.observe(HistKind::PointWallMicros, micros);
        if ok {
            self.metrics.inc(Counter::PointsCompleted);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            self.metrics.inc(Counter::PointsFailed);
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.beat("run");
    }

    /// Newly pruned points count as completions that never execute.
    fn add_pruned(&self, n: usize) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
        self.baseline.fetch_add(n, Ordering::Relaxed);
        self.beat("run");
    }

    /// Current p50-based ETA over the remaining grid, if any point has
    /// been timed yet.
    fn eta(&self) -> Option<f64> {
        let hist = self.wall_hist.lock().expect("wall histogram lock");
        eta_secs(
            &hist,
            self.grid_total.saturating_sub(self.done_total()),
            self.workers.load(Ordering::Relaxed),
        )
    }

    fn heartbeat(&self, phase: &str) -> Heartbeat {
        let executed = self.executed.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let point_wall = self.wall_hist.lock().expect("wall histogram lock").clone();
        let done = self.done_total();
        let eta = if phase == "done" {
            None
        } else {
            eta_secs(
                &point_wall,
                self.grid_total.saturating_sub(done),
                self.workers.load(Ordering::Relaxed),
            )
        };
        Heartbeat {
            version: HEARTBEAT_VERSION,
            phase: phase.to_string(),
            done,
            total: self.grid_total,
            cached: self.cached.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            elapsed_secs: elapsed,
            rate_pts_per_sec: executed as f64 / elapsed.max(1e-9),
            eta_secs: eta,
            retries: 0,
            point_wall,
            metrics: self.metrics.snapshot(),
        }
    }

    /// Rewrites the heartbeat file (no-op without a status path).
    fn beat(&self, phase: &str) {
        let Some(path) = &self.status else { return };
        let hb = self.heartbeat(phase);
        if let Err(e) = write_heartbeat(path, &hb) {
            eprintln!("sweep: heartbeat write failed for {}: {e}", path.display());
        }
        *self.last_beat.lock().expect("last beat lock") = Instant::now();
    }

    /// Monitor-thread tick: refresh the heartbeat when the last write is
    /// older than ~2 s (long points and idle phases stay visible).
    fn beat_if_stale(&self) {
        if self.status.is_none() {
            return;
        }
        let stale =
            self.last_beat.lock().expect("last beat lock").elapsed() >= Duration::from_secs(2);
        if stale {
            self.beat("run");
        }
    }

    /// Final exports: the `done` heartbeat and — when requested — the
    /// Prometheus exposition of the registry snapshot.
    fn finalize(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.beat("done");
        if let Some(path) = &self.prometheus {
            let snap = self.metrics.snapshot().unwrap_or_default();
            if let Err(e) = write_prometheus(path, &snap) {
                eprintln!("sweep: metrics write failed for {}: {e}", path.display());
            }
        }
    }
}

/// Owns the background heartbeat thread for one sweep call; dropping it
/// stops and joins the thread. No thread is spawned without a status
/// path.
struct PulseMonitor {
    pulse: Arc<Pulse>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PulseMonitor {
    fn spawn(pulse: &Arc<Pulse>) -> Self {
        // The monitor thread also runs the per-point timeout scan, so it
        // exists whenever either job has work to do.
        let wanted = pulse.status.is_some() || pulse.point_timeout.is_some();
        let handle = wanted.then(|| {
            let p = Arc::clone(pulse);
            std::thread::spawn(move || {
                while !p.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(250));
                    p.beat_if_stale();
                    p.check_timeouts();
                }
            })
        });
        Self {
            pulse: Arc::clone(pulse),
            handle,
        }
    }
}

impl Drop for PulseMonitor {
    fn drop(&mut self) {
        self.pulse.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The generic executor: applies `f` to every `(label, item)` pair on a
/// worker pool, isolating failures per item, and returns the results in
/// submission order. [`run_sweep`] is the [`DesignPoint`] instantiation;
/// binaries with bespoke per-point work (e.g. instruction-level
/// ablations) can call this directly.
pub fn sweep_map<I, T, F>(items: Vec<(String, I)>, opts: SweepOptions, f: F) -> Vec<SweepResult<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, AccelError> + Sync,
{
    let grid_total = if opts.progress_total > 0 {
        opts.progress_total
    } else {
        items.len()
    };
    let pulse = Pulse::start(
        &opts,
        grid_total,
        opts.progress_done,
        opts.progress_cached,
        opts.progress_pruned,
    );
    let monitor = PulseMonitor::spawn(&pulse);
    let results = sweep_map_walled(items, opts, &pulse, |item| {
        let start = Instant::now();
        match f(item) {
            Ok(t) => {
                let wall = start.elapsed();
                Ok((t, wall))
            }
            Err(e) => Err(SweepError::Accel(e)),
        }
    });
    drop(monitor);
    pulse.finalize();
    results
}

/// The executor core: like [`sweep_map`], but the closure reports its own
/// wall-clock alongside the payload, so wrappers that do bookkeeping
/// around the simulation (checkpoint encoding and flushing) can keep the
/// reported wall pure. Panics inside the closure are still caught and
/// isolated per item.
fn sweep_map_walled<I, T, G>(
    items: Vec<(String, I)>,
    opts: SweepOptions,
    pulse: &Pulse,
    g: G,
) -> Vec<SweepResult<T>>
where
    I: Send,
    T: Send,
    G: Fn(I) -> Result<(T, Duration), SweepError> + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = worker_count(opts.threads, total);
    pulse.workers.store(workers, Ordering::Relaxed);
    pulse.metrics.set_gauge(Gauge::SweepWorkers, workers as u64);
    // Progress lines report true grid position: a resumed sweep passes
    // the whole-grid total and the already-cached count so the first
    // fresh point of a 27-cached/32-point resume prints `[28/32]`. The
    // pts/s rate stays execution throughput (cached points cost ~0s and
    // would inflate it into a lie of the opposite kind).
    let grid_total = if opts.progress_total > 0 {
        opts.progress_total
    } else {
        total
    };
    let done_offset = opts.progress_done;
    // Cached/pruned points are accounted separately inside the bracket
    // (`[28/32, 9 cached, 6 pruned]`) so a resumed or pruned sweep's
    // position is honest about how much real simulation is happening.
    // Fresh unpruned sweeps keep the historical `[k/n]` form exactly.
    let mut provenance = String::new();
    if opts.progress_cached > 0 {
        provenance.push_str(&format!(", {} cached", opts.progress_cached));
    }
    if opts.progress_pruned > 0 {
        provenance.push_str(&format!(", {} pruned", opts.progress_pruned));
    }
    let sweep_start = Instant::now();

    let run_one = |label: &str, item: I, done: &AtomicUsize| -> SweepResult<T> {
        let attempt_start = Instant::now();
        pulse.metrics.gauge_add(Gauge::PointsInFlight, 1);
        let (outcome, wall) = match catch_unwind(AssertUnwindSafe(|| g(item))) {
            Ok(Ok((t, wall))) => (Ok(t), wall),
            Ok(Err(e)) => (Err(e), attempt_start.elapsed()),
            Err(payload) => (
                Err(SweepError::Panicked(panic_message(payload))),
                attempt_start.elapsed(),
            ),
        };
        pulse.metrics.gauge_sub(Gauge::PointsInFlight, 1);
        pulse.record_point(wall, outcome.is_ok());
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if opts.progress {
            let status = if outcome.is_ok() { "" } else { "FAILED " };
            let elapsed = sweep_start.elapsed().as_secs_f64();
            let rate = finished as f64 / elapsed.max(1e-9);
            // The ETA column comes from the shared per-point wall
            // histogram: p50 bucket bound × remaining waves, clamped.
            let eta = pulse
                .eta()
                .map(|s| format!(", eta {}", format_eta(s)))
                .unwrap_or_default();
            eprintln!(
                "[{}/{grid_total}{provenance}] {label} {status}{:.1}s | {elapsed:.1}s elapsed, {rate:.2} pts/s{eta}",
                finished + done_offset,
                wall.as_secs_f64()
            );
        }
        SweepResult {
            label: label.to_string(),
            outcome,
            wall,
            cached: false,
            pruned: None,
        }
    };

    let done = AtomicUsize::new(0);
    if workers == 1 {
        // Fully serial on the caller's thread: identical scheduling to
        // the historical per-binary loops.
        return items
            .into_iter()
            .map(|(label, item)| run_one(&label, item, &done))
            .collect();
    }

    // Workers claim items by atomic index and write results into the
    // matching slot, so output order is submission order regardless of
    // which thread finishes when.
    let work: Vec<Mutex<Option<(String, I)>>> = items
        .into_iter()
        .map(|pair| Mutex::new(Some(pair)))
        .collect();
    let slots: Vec<Mutex<Option<SweepResult<T>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let (label, item) = work[idx]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = run_one(&label, item, &done);
                *slots[idx].lock().expect("result slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// The checkpointing executor: like [`sweep_map`], but each item carries
/// a configuration fingerprint, completed results are appended to
/// `opts.checkpoint` as flushed JSON lines, and — in resume mode —
/// points whose `(label, fingerprint)` already appear in the file are
/// served from it without running.
///
/// A killed sweep therefore loses at most its in-flight points, and a
/// resumed sweep re-executes only stale or missing ones. With
/// `opts.checkpoint == None` and `opts.prune == None` this is exactly
/// [`sweep_map`].
///
/// With `opts.prune` set, execution is two-phased: group bases (and every
/// ungrouped point) run first, then each group's basis attribution
/// decides — via [`PrunePolicy::decide`] — whether the remaining members
/// are skipped with a synthesized prediction or simulated in a second
/// phase. Pruned points persist as first-class checkpoint entries
/// carrying their [`PruneEvidence`]; on resume they are replayed only
/// while the policy is still active *and* the recorded basis fingerprint
/// still matches the grid (any drift re-runs the point — the safe
/// direction).
pub fn sweep_map_checkpointed<I, T, F>(
    items: Vec<(String, u64, I)>,
    opts: SweepOptions,
    f: F,
) -> Vec<SweepResult<T>>
where
    I: Send,
    T: ToJson + FromJson + Clone + Attributed + Send,
    F: Fn(I) -> Result<T, AccelError> + Sync,
{
    let path = opts.checkpoint.clone();
    if path.is_none() && opts.prune.is_none() && opts.point_timeout.is_none() {
        let plain = items
            .into_iter()
            .map(|(label, _, item)| (label, item))
            .collect();
        return sweep_map(plain, opts, f);
    }

    let total = items.len();
    let policy = opts.prune.clone();
    // The grid's own label → (fingerprint, slot) map: prune evidence is
    // validated against it, and group bases are looked up through it.
    let grid: HashMap<String, (u64, usize)> = items
        .iter()
        .enumerate()
        .map(|(idx, (label, fingerprint, _))| (label.clone(), (*fingerprint, idx)))
        .collect();

    // Resume loads *quarantine*: an undecodable line (torn write, CRC
    // mismatch) is moved to the `.bad` sidecar and the file rewritten
    // without it, so damage is reported exactly once and the named point
    // simply re-runs.
    let mut checkpoint = match (&path, opts.resume) {
        (Some(path), true) => match Checkpoint::<T>::load_quarantining(path) {
            Ok((c, _quarantine)) => c,
            Err(e) => {
                eprintln!(
                    "sweep: cannot read checkpoint {}: {e}; running every point",
                    path.display()
                );
                Checkpoint::default()
            }
        },
        _ => Checkpoint::default(),
    };

    // Serve completed points from the checkpoint; queue the rest. A
    // persisted *pruned* entry replays only while pruning is still on and
    // its recorded basis fingerprint matches the grid's current basis —
    // otherwise the prediction's justification is gone and the point must
    // really run.
    let mut slots: Vec<Option<SweepResult<T>>> = (0..total).map(|_| None).collect();
    let mut to_run: Vec<(usize, String, u64, I)> = Vec::new();
    let mut cached_run = 0usize;
    let mut cached_pruned = 0usize;
    let mut cached_failed = 0usize;
    for (idx, (label, fingerprint, item)) in items.into_iter().enumerate() {
        let served = match checkpoint.take(&label, fingerprint) {
            Some(entry) => match entry.pruned {
                None => {
                    cached_run += 1;
                    slots[idx] = Some(SweepResult {
                        label: label.clone(),
                        outcome: Ok(entry.payload),
                        wall: entry.wall,
                        cached: true,
                        pruned: None,
                    });
                    true
                }
                Some(evidence) => {
                    let basis_current = grid
                        .get(&evidence.basis_label)
                        .is_some_and(|&(fp, _)| fp == evidence.basis_fingerprint);
                    if policy.is_some() && basis_current {
                        cached_pruned += 1;
                        slots[idx] = Some(SweepResult {
                            label: label.clone(),
                            outcome: Ok(entry.payload),
                            wall: entry.wall,
                            cached: true,
                            pruned: Some(evidence),
                        });
                        true
                    } else {
                        false
                    }
                }
            },
            // A recorded failure (timeout) is served as a first-class
            // `Err` result rather than re-attempted: a deterministic
            // hang must not wedge every resume cycle. Deleting the line
            // (or running without --resume) re-runs the point.
            None => match checkpoint.take_failed(&label, fingerprint) {
                Some(failure) => {
                    cached_failed += 1;
                    slots[idx] = Some(SweepResult {
                        label: label.clone(),
                        outcome: Err(SweepError::Recorded(failure.reason)),
                        wall: failure.wall,
                        cached: true,
                        pruned: None,
                    });
                    true
                }
                None => false,
            },
        };
        if !served {
            to_run.push((idx, label, fingerprint, item));
        }
    }
    let skipped = total - to_run.len();
    // One telemetry pulse spans both execution phases, so the heartbeat
    // and ETA see whole-grid progress rather than per-phase slices.
    let pulse = Pulse::start(&opts, total, skipped, cached_run, cached_pruned);
    pulse.failed.fetch_add(cached_failed, Ordering::Relaxed);
    let monitor = PulseMonitor::spawn(&pulse);
    opts.metrics
        .add(Counter::PointsCached, (cached_run + cached_pruned) as u64);
    if opts.resume {
        if let Some(path) = &path {
            let stale = checkpoint.stale_lines;
            eprintln!(
                "sweep: resume from {}: skipped {skipped}/{total} completed points{}{}{}",
                path.display(),
                if cached_pruned > 0 {
                    format!(" ({cached_pruned} pruned replayed)")
                } else {
                    String::new()
                },
                if cached_failed > 0 {
                    format!(" ({cached_failed} recorded failures served)")
                } else {
                    String::new()
                },
                if stale > 0 {
                    format!(" ({stale} stale/partial lines ignored)")
                } else {
                    String::new()
                }
            );
        }
    }

    // Fresh runs truncate; resumes append (re-run entries shadow stale
    // ones on the next load). A checkpoint the filesystem refuses to
    // open degrades to an unpersisted sweep rather than losing the run.
    let writer = match &path {
        Some(path) => {
            let writer = if opts.resume {
                CheckpointWriter::append_to(path)
            } else {
                CheckpointWriter::create(path)
            };
            match writer {
                Ok(w) => Some(Arc::new(w)),
                Err(e) => {
                    eprintln!(
                        "sweep: cannot write checkpoint {}: {e}; results will not be persisted",
                        path.display()
                    );
                    None
                }
            }
        }
        None => None,
    };
    // Hand the writer to the timeout monitor so an expired point can be
    // recorded as failed:timeout from outside its (wedged) worker.
    *pulse.writer.lock().expect("writer lock") = writer.clone();

    // Split what's left into phase 1 — group bases and ungrouped points,
    // which must really run — and the group members whose fate phase 1's
    // attributions decide. A member whose basis is not even in the grid
    // can never be predicted and runs in phase 1 too.
    let mut phase1: Vec<(usize, String, u64, I)> = Vec::new();
    let mut candidates: Vec<(usize, String, u64, I)> = Vec::new();
    for entry in to_run {
        let deferred = policy.as_ref().is_some_and(|p| {
            !p.is_basis(&entry.1)
                && p.group_of_member(&entry.1)
                    .is_some_and(|g| grid.contains_key(&g.basis))
        });
        if deferred {
            candidates.push(entry);
        } else {
            phase1.push(entry);
        }
    }

    // Test-only crash hook (CI and the shard supervisor tests): on a
    // fresh sweep, simulate a hard crash as the k+1-th execution begins,
    // leaving exactly k completed points in the checkpoint. Resumed
    // sweeps (skipped > 0) never crash, so a retry completes. The
    // counter is shared across both execution phases.
    let crash_hook = if skipped == 0 {
        std::env::var(CRASH_AFTER_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|k| (k, AtomicUsize::new(0)))
    } else {
        None
    };
    // Same shape as the crash hook, but the worker wedges instead of
    // aborting — the supervisor watchdog's test prey.
    let hang_hook = if skipped == 0 {
        std::env::var(HANG_AFTER_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|k| (k, AtomicUsize::new(0)))
    } else {
        None
    };

    let writer_ref = &writer;
    let crash_hook = &crash_hook;
    let hang_hook = &hang_hook;
    let pulse_ref = &pulse;
    let run_point = move |(label, fingerprint, item): (String, u64, I)| {
        if let Some((k, started)) = crash_hook {
            if started.fetch_add(1, Ordering::SeqCst) >= *k {
                eprintln!("sweep: {CRASH_AFTER_ENV} hook: aborting before '{label}'");
                std::process::abort();
            }
        }
        // Deregisters on every exit path, including a panic inside `f`
        // (unwinding must not leave a ghost in-flight entry for the
        // timeout monitor to "time out" later).
        let _guard = InFlightGuard {
            pulse: pulse_ref,
            ticket: pulse_ref.enter_point(&label, fingerprint),
        };
        if let Some((k, started)) = hang_hook {
            if started.fetch_add(1, Ordering::SeqCst) >= *k {
                eprintln!("sweep: {HANG_AFTER_ENV} hook: hanging in '{label}'");
                crate::fault::hang_forever("test.hang_after");
            }
        }
        match crate::fault::fire("sweep.point") {
            Some(crate::fault::FaultAction::Hang) => crate::fault::hang_forever("sweep.point"),
            Some(crate::fault::FaultAction::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
        let start = Instant::now();
        let payload = f(item).map_err(SweepError::Accel)?;
        // The persisted wall and the returned wall are the same pure
        // simulation measurement; JSON encoding and the flushed append
        // below are excluded from both.
        let wall = start.elapsed();
        if let Some(w) = writer_ref {
            let entry = CheckpointEntry {
                label,
                fingerprint,
                wall,
                payload,
                pruned: None,
            };
            if let Err(e) = w.append(&entry) {
                eprintln!("sweep: checkpoint append failed for '{}': {e}", entry.label);
            }
            Ok((entry.payload, wall))
        } else {
            Ok((payload, wall))
        }
    };

    // Phase 1: bases and ungrouped points. The inner executor sees only
    // the points that still need to run; progress lines must nevertheless
    // report whole-grid positions and provenance.
    let mut run_opts = opts.clone();
    run_opts.progress_done = skipped;
    run_opts.progress_total = total;
    run_opts.progress_cached = cached_run;
    run_opts.progress_pruned = cached_pruned;
    let phase1_count = phase1.len();
    let order: Vec<usize> = phase1.iter().map(|(idx, ..)| *idx).collect();
    let work: Vec<(String, (String, u64, I))> = phase1
        .into_iter()
        .map(|(_, label, fingerprint, item)| (label.clone(), (label, fingerprint, item)))
        .collect();
    let ran = sweep_map_walled(work, run_opts, &pulse, &run_point);
    for (idx, result) in order.into_iter().zip(ran) {
        slots[idx] = Some(result);
    }

    // Decide each remaining member against its basis's attribution: prune
    // with evidence (persisted like any completed point, wall 0), or send
    // it to phase 2 to really run.
    let mut newly_pruned = 0usize;
    let mut phase2: Vec<(usize, String, u64, I)> = Vec::new();
    for (idx, label, fingerprint, item) in candidates {
        let policy = policy.as_ref().expect("candidates imply a policy");
        let group = policy
            .group_of_member(&label)
            .expect("candidates are group members");
        let decision = grid
            .get(&group.basis)
            .and_then(|&(basis_fp, basis_idx)| {
                let basis = slots[basis_idx].as_ref()?;
                // A basis must be a real simulation: a failed basis has
                // no payload, and a (stale-file) predicted basis is not
                // evidence.
                if basis.pruned.is_some() {
                    return None;
                }
                let attr = basis.ok().and_then(|payload| payload.cycle_attribution());
                Some(policy.decide(&group.basis, basis_fp, attr))
            })
            .unwrap_or(PruneDecision::Run(crate::prune::RunReason::NoAttribution));
        match decision {
            PruneDecision::Prune(evidence) => {
                let (_, basis_idx) = grid[&group.basis];
                let predicted = slots[basis_idx]
                    .as_ref()
                    .and_then(|b| b.ok())
                    .expect("a prune decision implies a successful basis")
                    .clone();
                if let Some(w) = &writer {
                    let entry = CheckpointEntry {
                        label: label.clone(),
                        fingerprint,
                        wall: Duration::ZERO,
                        payload: predicted,
                        pruned: Some(evidence.clone()),
                    };
                    if let Err(e) = w.append(&entry) {
                        eprintln!("sweep: checkpoint append failed for '{label}': {e}");
                    }
                    slots[idx] = Some(SweepResult::pruned_from(label, entry.payload, evidence));
                } else {
                    slots[idx] = Some(SweepResult::pruned_from(label, predicted, evidence));
                }
                newly_pruned += 1;
            }
            PruneDecision::Run(_) => phase2.push((idx, label, fingerprint, item)),
        }
    }
    if newly_pruned > 0 {
        pulse.add_pruned(newly_pruned);
        opts.metrics.add(Counter::PointsPruned, newly_pruned as u64);
    }

    // Phase 2: members the evidence could not excuse.
    if !phase2.is_empty() {
        let mut run_opts = opts.clone();
        run_opts.progress_done = skipped + phase1_count + newly_pruned;
        run_opts.progress_total = total;
        run_opts.progress_cached = cached_run;
        run_opts.progress_pruned = cached_pruned + newly_pruned;
        let order: Vec<usize> = phase2.iter().map(|(idx, ..)| *idx).collect();
        let work: Vec<(String, (String, u64, I))> = phase2
            .into_iter()
            .map(|(_, label, fingerprint, item)| (label.clone(), (label, fingerprint, item)))
            .collect();
        let ran = sweep_map_walled(work, run_opts, &pulse, &run_point);
        for (idx, result) in order.into_iter().zip(ran) {
            slots[idx] = Some(result);
        }
    }
    drop(monitor);
    pulse.finalize();

    if policy.is_some() && opts.progress {
        let pruned_total = cached_pruned + newly_pruned;
        eprintln!(
            "sweep: pruned {pruned_total}/{total} point(s) via {} attribution ({} simulated, {cached_run} cached)",
            policy.as_ref().map_or("?", |p| p.axis.name()),
            total - pruned_total - cached_run,
        );
    }

    // A resumed completion has appended re-run entries over stale ones;
    // reclaim the shadowed lines so repeated resume cycles cannot grow
    // the file without bound. (Fresh runs truncate on open, so every
    // label is already unique.)
    if opts.resume && writer.is_some() {
        drop(writer);
        let path = path.as_ref().expect("a writer implies a path");
        match compact(path) {
            Ok(c) if c.dropped > 0 && opts.progress => eprintln!(
                "sweep: compacted checkpoint {}: kept {}, reclaimed {} shadowed lines",
                path.display(),
                c.kept,
                c.dropped
            ),
            Ok(_) => {}
            Err(e) => eprintln!(
                "sweep: checkpoint compaction failed for {}: {e}",
                path.display()
            ),
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every point is either cached, pruned, or executed"))
        .collect()
}

/// Runs a batch of [`DesignPoint`]s with default options (worker count
/// from `GEMMINI_THREADS`, progress lines on).
pub fn run_sweep(points: Vec<DesignPoint>) -> Vec<SweepResult<SocReport>> {
    run_sweep_with(points, SweepOptions::default())
}

/// Runs a batch of [`DesignPoint`]s with explicit options. With
/// `opts.checkpoint` set, completed reports persist as JSON lines; with
/// `opts.resume` as well, points already in the file are skipped.
pub fn run_sweep_with(points: Vec<DesignPoint>, opts: SweepOptions) -> Vec<SweepResult<SocReport>> {
    let metrics = opts.metrics.clone();
    let items = points
        .into_iter()
        .map(|p| (p.label.clone(), p.fingerprint(), p))
        .collect::<Vec<_>>();
    sweep_map_checkpointed(items, opts, move |p| {
        run_networks_metered(&p.config, &p.networks, &p.options, &metrics)
    })
}

/// Exact cross-point rollup of the memory-system counters, folded
/// through the substrate's own `merge` operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryRollup {
    /// Shared-L2 hit/miss counters summed over every report.
    pub l2: HitMissStats,
    /// Dirty L2 writebacks summed over every report.
    pub l2_writebacks: u64,
    /// DRAM-channel traffic summed over every report.
    pub dram: TrafficStats,
    /// Reports folded in.
    pub reports: usize,
}

impl MemoryRollup {
    /// Folds another rollup into this one — the shard-merge primitive
    /// for multi-process sweeps: each shard computes its own rollup from
    /// its checkpoint file, and absorbing them in any order or grouping
    /// yields the single-process totals exactly (the property tests in
    /// `crates/soc/tests/properties.rs` prove commutativity,
    /// associativity, and the empty-rollup identity).
    pub fn absorb(&mut self, other: &MemoryRollup) {
        self.l2.merge(&other.l2);
        self.l2_writebacks += other.l2_writebacks;
        self.dram.merge(&other.dram);
        self.reports += other.reports;
    }
}

/// Merges the memory statistics of every successful report. Because the
/// fold uses [`HitMissStats::merge`]/[`TrafficStats::merge`], the result
/// over N parallel shards is bit-equal to a serial accumulation.
pub fn merge_memory_stats<'a, I>(reports: I) -> MemoryRollup
where
    I: IntoIterator<Item = &'a SocReport>,
{
    let mut rollup = MemoryRollup::default();
    for r in reports {
        rollup.l2.merge(&r.l2_stats);
        rollup.l2_writebacks += r.l2.writebacks;
        rollup.dram.merge(&r.dram_traffic);
        rollup.reports += 1;
    }
    rollup
}

#[cfg(test)]
mod tests {
    use super::*;

    // Explicit thread count so these tests never read GEMMINI_THREADS
    // (env mutation would race with parallel test execution).
    fn quiet() -> SweepOptions {
        SweepOptions {
            threads: 2,
            progress: false,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let items: Vec<(String, u64)> = (0..16).map(|i| (format!("p{i}"), i)).collect();
        let results = sweep_map(
            items,
            SweepOptions {
                threads: 4,
                progress: false,
                ..SweepOptions::default()
            },
            |i| {
                // Earlier items sleep longer, so completion order is the
                // reverse of submission order.
                std::thread::sleep(Duration::from_millis(2 * (16 - i)));
                Ok(i * 10)
            },
        );
        let got: Vec<u64> = results.iter().map(|r| *r.expect_ok()).collect();
        assert_eq!(got, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(results[3].label, "p3");
    }

    #[test]
    fn panicking_item_is_isolated() {
        let items: Vec<(String, u64)> = (0..6).map(|i| (format!("p{i}"), i)).collect();
        let results = sweep_map(
            items,
            SweepOptions {
                threads: 3,
                progress: false,
                ..SweepOptions::default()
            },
            |i| {
                if i == 2 {
                    panic!("deliberate failure at point {i}");
                }
                Ok(i)
            },
        );
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                match &r.outcome {
                    Err(SweepError::Panicked(msg)) => {
                        assert!(msg.contains("deliberate failure"), "got: {msg}");
                    }
                    other => panic!("expected panic entry, got {other:?}"),
                }
            } else {
                assert_eq!(*r.expect_ok(), i as u64);
            }
        }
    }

    #[test]
    fn accel_error_is_isolated() {
        let items = vec![
            ("ok".to_string(), 1u32),
            ("bad".to_string(), 2),
            ("ok2".to_string(), 3),
        ];
        let results = sweep_map(items, quiet(), |i| {
            if i == 2 {
                Err(AccelError::NoPreload)
            } else {
                Ok(i)
            }
        });
        assert!(results[0].outcome.is_ok());
        assert!(matches!(
            results[1].outcome,
            Err(SweepError::Accel(AccelError::NoPreload))
        ));
        assert!(results[2].outcome.is_ok());
    }

    #[test]
    fn worker_count_resolution() {
        // Explicit threads win and are clamped to the point count.
        assert_eq!(worker_count(8, 3), 3);
        assert_eq!(worker_count(2, 100), 2);
        // Zero points still yields a sane value.
        assert_eq!(worker_count(4, 0), 1);
    }

    #[test]
    fn empty_sweep_is_empty() {
        let results = sweep_map(Vec::<(String, ())>::new(), quiet(), |_| Ok(0u8));
        assert!(results.is_empty());
    }

    #[test]
    fn resume_serves_recorded_failures_without_rerunning() {
        let path =
            std::env::temp_dir().join(format!("gemmini_sweep_failed_{}.jsonl", std::process::id()));
        let fp = |i: u64| debug_fingerprint(&i);
        // Seed the checkpoint: "a" completed, "b" recorded as timed out.
        let writer = CheckpointWriter::create(&path).unwrap();
        writer
            .append(&CheckpointEntry {
                label: "a".to_string(),
                fingerprint: fp(1),
                wall: Duration::from_micros(5),
                payload: 10u64,
                pruned: None,
            })
            .unwrap();
        writer
            .append_failed(&FailedEntry {
                label: "b".to_string(),
                fingerprint: fp(2),
                wall: Duration::from_secs(9),
                reason: "timeout".to_string(),
            })
            .unwrap();
        drop(writer);

        let items: Vec<(String, u64, u64)> = vec![
            ("a".to_string(), fp(1), 1),
            ("b".to_string(), fp(2), 2),
            ("c".to_string(), fp(3), 3),
        ];
        let ran = AtomicUsize::new(0);
        let opts = SweepOptions {
            progress: false,
            threads: 1,
            ..SweepOptions::checkpointed(&path, true)
        };
        let results = sweep_map_checkpointed(items, opts, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert_ne!(i, 2, "the recorded failure must be served, not re-run");
            Ok(i * 10)
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1, "only 'c' executes");
        assert_eq!(*results[0].expect_ok(), 10);
        assert!(results[0].cached);
        match &results[1].outcome {
            Err(SweepError::Recorded(reason)) => assert_eq!(reason, "timeout"),
            other => panic!("expected served failure, got {other:?}"),
        }
        assert!(results[1].cached);
        assert_eq!(results[1].wall, Duration::from_secs(9));
        assert_eq!(*results[2].expect_ok(), 30);

        // A fresh (non-resume) run ignores the recorded failure and
        // re-attempts everything.
        let opts = SweepOptions {
            progress: false,
            threads: 1,
            ..SweepOptions::checkpointed(&path, false)
        };
        let items: Vec<(String, u64, u64)> = vec![("b".to_string(), fp(2), 2)];
        let results = sweep_map_checkpointed(items, opts, |i| Ok(i * 10));
        assert_eq!(*results[0].expect_ok(), 20);
        std::fs::remove_file(&path).unwrap();
    }
}
