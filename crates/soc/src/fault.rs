//! Deterministic fault injection ("failpoints") for robustness testing.
//!
//! Long sharded sweeps must survive hung workers, torn checkpoint
//! writes and corrupted lines — failure modes that are essentially
//! untestable without a way to *cause* them on demand. This module is a
//! process-wide registry of named failpoint sites, armed from the
//! `GEMMINI_FAULTS` environment variable (or the sweep binaries'
//! `--faults` flag, which sets the same variable before any site is
//! evaluated). Each site in the checkpoint writer, shard supervisor,
//! telemetry heartbeat and sweep executor asks the registry what to do;
//! with nothing armed — the default — every site is exactly one untaken
//! branch on a relaxed atomic load, and results are bit-identical to a
//! build without the registry.
//!
//! # Spec grammar
//!
//! ```text
//! GEMMINI_FAULTS = entry ( "," entry )*
//! entry          = site "=" action [ "@" hit ]
//! action         = "fail" | "hang" | "corrupt" | "skip" | "delay:" millis
//! ```
//!
//! `site` names one instrumented point in dotted lower-case
//! (`checkpoint.flush`, `checkpoint.corrupt`, `heartbeat.write`,
//! `sweep.point`). `@hit` restricts the action to exactly the N-th
//! evaluation of that site in this process (1-based), so a schedule like
//! `checkpoint.flush=fail@3` injects one I/O error on the third
//! checkpoint append and nothing else — fully deterministic, no clocks
//! and no randomness. Without `@hit` the action fires on every
//! evaluation.
//!
//! # Per-shard scoping
//!
//! A supervised sweep shares one environment between the supervisor and
//! its worker children. `GEMMINI_FAULTS_SHARD=<index>` restricts the
//! schedule to one worker: every other shard worker — and the
//! supervisor itself — calls [`disarm`] on startup, so exactly one
//! process in the fleet takes the faults. This mirrors the
//! `GEMMINI_TEST_CRASH_SHARD` convention of the crash-test hook.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable holding the fault schedule.
pub const FAULTS_ENV: &str = "GEMMINI_FAULTS";

/// Environment variable restricting the schedule to one shard worker
/// (see the module docs).
pub const FAULTS_SHARD_ENV: &str = "GEMMINI_FAULTS_SHARD";

/// What an armed failpoint tells its site to do. Sites interpret only
/// the actions that make sense for them and ignore the rest (an ignored
/// action is reported once on stderr so a typo'd schedule is visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected error.
    Fail,
    /// Hang: sleep effectively forever (the watchdog's prey).
    Hang,
    /// Corrupt the bytes the site was about to write.
    Corrupt,
    /// Silently skip the operation (e.g. suppress a heartbeat write).
    Skip,
    /// Delay the operation by the given duration, then proceed.
    Delay(Duration),
}

impl FaultAction {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fail" => Ok(Self::Fail),
            "hang" => Ok(Self::Hang),
            "corrupt" => Ok(Self::Corrupt),
            "skip" => Ok(Self::Skip),
            _ => {
                if let Some(ms) = s.strip_prefix("delay:") {
                    let ms = ms
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("invalid delay millis in fault action '{s}'"))?;
                    Ok(Self::Delay(Duration::from_millis(ms)))
                } else {
                    Err(format!(
                        "unknown fault action '{s}' (expected fail|hang|corrupt|skip|delay:<ms>)"
                    ))
                }
            }
        }
    }
}

/// One armed failpoint: a site name, an action, an optional 1-based hit
/// index, and the site's evaluation counter.
#[derive(Debug)]
struct Failpoint {
    site: String,
    action: FaultAction,
    /// `Some(n)`: fire only on the n-th evaluation (1-based).
    /// `None`: fire on every evaluation.
    hit: Option<u64>,
    evaluations: AtomicU64,
}

/// The parsed schedule. Empty (the overwhelmingly common case) means
/// every site is a single untaken branch.
#[derive(Debug, Default)]
struct Registry {
    points: Vec<Failpoint>,
}

impl Registry {
    fn parse(spec: &str) -> Result<Self, String> {
        let mut points = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("invalid fault entry '{entry}' (expected site=action)"))?;
            let (action, hit) = match rest.split_once('@') {
                Some((action, hit)) => {
                    let hit = hit
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("invalid hit index in fault entry '{entry}'"))?;
                    if hit == 0 {
                        return Err(format!(
                            "hit index in '{entry}' is 1-based and must be positive"
                        ));
                    }
                    (action.trim(), Some(hit))
                }
                None => (rest.trim(), None),
            };
            points.push(Failpoint {
                site: site.trim().to_string(),
                action: FaultAction::parse(action)?,
                hit,
                evaluations: AtomicU64::new(0),
            });
        }
        Ok(Self { points })
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => match Registry::parse(&spec) {
            Ok(reg) => {
                if !reg.points.is_empty() {
                    eprintln!("fault: armed {} failpoint(s): {spec}", reg.points.len());
                }
                reg
            }
            Err(msg) => {
                eprintln!("fault: ignoring invalid {FAULTS_ENV}: {msg}");
                Registry::default()
            }
        },
        _ => Registry::default(),
    })
}

/// Arms the registry for this process if `GEMMINI_FAULTS` names a
/// non-empty schedule. Called lazily by the first [`fire`]; call it
/// eagerly (e.g. right after CLI parsing) to surface schedule typos
/// before the sweep starts.
pub fn arm() {
    if !registry().points.is_empty() {
        ARMED.store(true, Ordering::Release);
    }
}

/// Permanently disarms every failpoint in this process (the schedule
/// stays in the environment for child processes to inherit). Used by
/// the shard supervisor — and by workers whose index does not match
/// `GEMMINI_FAULTS_SHARD` — so a fleet-wide environment arms exactly
/// one process.
pub fn disarm() {
    // Initialize-then-drain: fire() consults ARMED first, so flipping it
    // off makes every later evaluation the plain untaken branch.
    arm();
    ARMED.store(false, Ordering::Release);
}

/// Disarms this process unless `GEMMINI_FAULTS_SHARD` is unset or names
/// `shard_index`. A `None` index is "not a shard worker" (the
/// supervisor), which never takes scoped faults.
pub fn scope_to_shard(shard_index: Option<usize>) {
    if let Ok(v) = std::env::var(FAULTS_SHARD_ENV) {
        if v.trim().parse::<usize>().ok() != shard_index {
            disarm();
        }
    }
}

/// Evaluates the failpoint `site`: returns the armed action when the
/// schedule says this evaluation should take a fault, `None` otherwise.
/// The disabled path (no schedule, or disarmed) is a single relaxed
/// atomic load and an untaken branch — call it freely from hot paths.
pub fn fire(site: &str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        // Lazily arm on first evaluation so call sites need no setup.
        if REGISTRY.get().is_some() {
            return None;
        }
        arm();
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
    }
    let reg = registry();
    for point in &reg.points {
        if point.site != site {
            continue;
        }
        let n = point.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
        match point.hit {
            Some(hit) if hit != n => continue,
            _ => {
                eprintln!("fault: {site} -> {:?} (evaluation {n})", point.action);
                return Some(point.action);
            }
        }
    }
    None
}

/// Convenience for I/O sites: an injected [`std::io::Error`] when `site`
/// fires with [`FaultAction::Fail`]. [`FaultAction::Delay`] sleeps and
/// returns `None`; other actions are ignored here (the site handles
/// corrupt/hang/skip itself if it supports them).
pub fn fail_io(site: &str) -> Option<std::io::Error> {
    match fire(site)? {
        FaultAction::Fail => Some(std::io::Error::other(format!(
            "injected fault at failpoint '{site}'"
        ))),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        _ => None,
    }
}

/// Sleeps effectively forever — what a site does on
/// [`FaultAction::Hang`]. Never returns; the process is expected to be
/// killed by a watchdog or supervisor.
pub fn hang_forever(site: &str) -> ! {
    eprintln!("fault: hanging at failpoint '{site}'");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the parser and the pure decision logic
    // directly; the process-global registry is covered end-to-end by the
    // chaos CI job (environment mutation in unit tests would race with
    // parallel test execution).

    #[test]
    fn parses_a_full_schedule() {
        let reg = Registry::parse(
            "checkpoint.flush=fail@3, checkpoint.corrupt=corrupt@5,sweep.point=delay:250",
        )
        .unwrap();
        assert_eq!(reg.points.len(), 3);
        assert_eq!(reg.points[0].site, "checkpoint.flush");
        assert_eq!(reg.points[0].action, FaultAction::Fail);
        assert_eq!(reg.points[0].hit, Some(3));
        assert_eq!(reg.points[1].action, FaultAction::Corrupt);
        assert_eq!(
            reg.points[2].action,
            FaultAction::Delay(Duration::from_millis(250))
        );
        assert_eq!(reg.points[2].hit, None);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(Registry::parse("no-equals-sign").is_err());
        assert!(Registry::parse("site=explode").is_err());
        assert!(Registry::parse("site=fail@0").is_err(), "hits are 1-based");
        assert!(Registry::parse("site=fail@x").is_err());
        assert!(Registry::parse("site=delay:abc").is_err());
        assert!(Registry::parse("").unwrap().points.is_empty());
        assert!(Registry::parse(" , ,").unwrap().points.is_empty());
    }

    #[test]
    fn hit_counting_is_per_site_and_one_based() {
        let reg = Registry::parse("a=fail@2,b=skip").unwrap();
        let eval = |reg: &Registry, site: &str| -> Option<FaultAction> {
            for p in &reg.points {
                if p.site != site {
                    continue;
                }
                let n = p.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
                match p.hit {
                    Some(hit) if hit != n => continue,
                    _ => return Some(p.action),
                }
            }
            None
        };
        assert_eq!(eval(&reg, "a"), None, "first evaluation passes");
        assert_eq!(eval(&reg, "a"), Some(FaultAction::Fail), "second fires");
        assert_eq!(eval(&reg, "a"), None, "third passes again");
        assert_eq!(eval(&reg, "b"), Some(FaultAction::Skip), "unconditional");
        assert_eq!(eval(&reg, "b"), Some(FaultAction::Skip));
        assert_eq!(eval(&reg, "unknown"), None);
    }
}
