//! Sweep heartbeats and metric exposition files.
//!
//! A long sharded sweep is a black box without live output. This module
//! gives every sweep process two export surfaces, both plain files so
//! they work on any machine with no server and no new dependencies:
//!
//! * a **heartbeat**: one JSON document ([`Heartbeat`]) rewritten
//!   atomically (temp file + rename, the checkpoint-compaction idiom) on
//!   every point completion and every ~2 s, carrying phase, progress
//!   counts, throughput, a p50-derived ETA, the per-point wall-clock
//!   histogram and — when live metrics are enabled — a full
//!   [`MetricsSnapshot`]. `watch cat sweep.status.json` is the intended
//!   consumer; the `--shards` supervisor reads its children's heartbeats
//!   to render the fleet view.
//! * a **Prometheus text exposition** ([`write_prometheus`]): the
//!   registry snapshot rendered in exposition format 0.0.4 for scraping
//!   or offline inspection.
//!
//! Readers must tolerate a heartbeat that does not exist yet (the child
//! has not started) — [`read_heartbeat`] returns `None` rather than an
//! error for a missing or torn file, which the atomic rename makes
//! impossible to observe on POSIX anyway.

use gemmini_core::metrics::{prometheus_text, Log2Histogram, MetricsSnapshot};
use gemmini_mem::json::{FromJson, Json, JsonError, ToJson};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Schema version of the heartbeat document; bump on breaking change.
pub const HEARTBEAT_VERSION: u32 = 1;

/// One live-status snapshot of a sweep process (or of a whole fleet,
/// when written by the shard supervisor with merged children).
#[derive(Debug, Clone, PartialEq)]
pub struct Heartbeat {
    /// Schema version ([`HEARTBEAT_VERSION`]).
    pub version: u32,
    /// What the process is doing: `run`, `done`, or `failed`.
    pub phase: String,
    /// Points finished (simulated + cached + pruned + failed).
    pub done: usize,
    /// Total points in this process's slice of the grid.
    pub total: usize,
    /// Of `done`, how many were served from a checkpoint.
    pub cached: usize,
    /// Of `done`, how many were pruned from a basis prediction.
    pub pruned: usize,
    /// Of `done`, how many failed (error or panic).
    pub failed: usize,
    /// Seconds since this sweep started.
    pub elapsed_secs: f64,
    /// Fresh simulations per second of elapsed time.
    pub rate_pts_per_sec: f64,
    /// Estimated seconds to completion (p50-based, clamped); `None`
    /// until at least one point has been simulated, and when done.
    pub eta_secs: Option<f64>,
    /// Shard-child retries (only the supervisor increments this).
    pub retries: u64,
    /// Wall-clock microseconds per simulated point.
    pub point_wall: Log2Histogram,
    /// Full live-metrics snapshot, when a registry is enabled.
    pub metrics: Option<MetricsSnapshot>,
}

impl Heartbeat {
    /// An empty heartbeat in phase `run` over a `total`-point slice.
    pub fn starting(total: usize) -> Self {
        Self {
            version: HEARTBEAT_VERSION,
            phase: "run".to_string(),
            done: 0,
            total,
            cached: 0,
            pruned: 0,
            failed: 0,
            elapsed_secs: 0.0,
            rate_pts_per_sec: 0.0,
            eta_secs: None,
            retries: 0,
            point_wall: Log2Histogram::new(),
            metrics: None,
        }
    }

    /// Folds another process's heartbeat into this one: counts add,
    /// histograms merge, elapsed takes the max (the fleet is as old as
    /// its oldest member), rates add (aggregate throughput), ETA takes
    /// the max (the fleet finishes with its slowest shard), and metric
    /// snapshots merge exactly.
    pub fn absorb(&mut self, other: &Heartbeat) {
        self.done += other.done;
        self.total += other.total;
        self.cached += other.cached;
        self.pruned += other.pruned;
        self.failed += other.failed;
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
        self.rate_pts_per_sec += other.rate_pts_per_sec;
        self.eta_secs = match (self.eta_secs, other.eta_secs) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.retries += other.retries;
        self.point_wall.merge(&other.point_wall);
        match (&mut self.metrics, &other.metrics) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
            _ => {}
        }
    }
}

impl ToJson for Heartbeat {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(u64::from(self.version))),
            ("phase", Json::from(self.phase.clone())),
            ("done", Json::from(self.done)),
            ("total", Json::from(self.total)),
            ("cached", Json::from(self.cached)),
            ("pruned", Json::from(self.pruned)),
            ("failed", Json::from(self.failed)),
            ("elapsed_secs", Json::from(self.elapsed_secs)),
            ("rate_pts_per_sec", Json::from(self.rate_pts_per_sec)),
            (
                "eta_secs",
                match self.eta_secs {
                    Some(s) => Json::from(s),
                    None => Json::Null,
                },
            ),
            ("retries", Json::from(self.retries)),
            ("point_wall", self.point_wall.to_json()),
            (
                "metrics",
                match &self.metrics {
                    Some(snap) => snap.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for Heartbeat {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let eta_secs = match value.field("eta_secs")? {
            Json::Null => None,
            v => Some(v.as_f64()?),
        };
        let metrics = match value.field("metrics")? {
            Json::Null => None,
            v => Some(MetricsSnapshot::from_json(v)?),
        };
        Ok(Self {
            version: u32::try_from(value.field("version")?.as_u64()?)
                .map_err(|_| JsonError::new("heartbeat version out of range"))?,
            phase: value.field("phase")?.as_str()?.to_string(),
            done: value.field("done")?.as_u64()? as usize,
            total: value.field("total")?.as_u64()? as usize,
            cached: value.field("cached")?.as_u64()? as usize,
            pruned: value.field("pruned")?.as_u64()? as usize,
            failed: value.field("failed")?.as_u64()? as usize,
            elapsed_secs: value.field("elapsed_secs")?.as_f64()?,
            rate_pts_per_sec: value.field("rate_pts_per_sec")?.as_f64()?,
            eta_secs,
            retries: value.field("retries")?.as_u64()?,
            point_wall: Log2Histogram::from_json(value.field("point_wall")?)?,
            metrics,
        })
    }
}

/// Writes `heartbeat` to `path` atomically: the document goes to a
/// hidden temp file in the same directory, then renames over the
/// target, so a concurrent reader sees either the old complete document
/// or the new one — never a torn write.
///
/// # Errors
///
/// Returns the first I/O error from creating, writing, or renaming.
pub fn write_heartbeat(path: &Path, heartbeat: &Heartbeat) -> std::io::Result<()> {
    // Failpoints (`heartbeat.write`): `skip` silently suppresses the
    // write — a frozen heartbeat the watchdog and staleness marking must
    // tolerate — and `fail` injects the I/O error path.
    match crate::fault::fire("heartbeat.write") {
        Some(crate::fault::FaultAction::Skip) => return Ok(()),
        Some(crate::fault::FaultAction::Fail) => {
            return Err(std::io::Error::other(
                "injected fault at failpoint 'heartbeat.write'",
            ))
        }
        _ => {}
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("status.json");
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    {
        let mut out = std::fs::File::create(&tmp)?;
        out.write_all(heartbeat.to_json().encode().as_bytes())?;
        out.write_all(b"\n")?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a heartbeat back, returning `None` when the file does not
/// exist yet or does not parse (a child that has not started, or a
/// file from an older schema) — fleet rendering degrades gracefully
/// instead of failing the supervisor.
pub fn read_heartbeat(path: &Path) -> Option<Heartbeat> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    Heartbeat::from_json(&json).ok()
}

/// Writes a registry snapshot as Prometheus text exposition (atomic,
/// same temp-file + rename discipline as the heartbeat).
///
/// # Errors
///
/// Returns the first I/O error from creating, writing, or renaming.
pub fn write_prometheus(path: &Path, snapshot: &MetricsSnapshot) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("metrics.prom");
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, prometheus_text(snapshot))?;
    std::fs::rename(&tmp, path)
}

/// Age of a heartbeat file: how long ago it was last rewritten, from
/// filesystem mtime. `None` when the file does not exist (the worker
/// has not started) or the clock arithmetic fails. The fleet view uses
/// this to mark shards whose *writer is gone* — a killed worker leaves
/// its last heartbeat behind forever, and without an age check the
/// fleet line would report its stale progress as live.
pub fn heartbeat_age(path: &Path) -> Option<Duration> {
    let modified = std::fs::metadata(path).ok()?.modified().ok()?;
    std::time::SystemTime::now().duration_since(modified).ok()
}

/// Estimated seconds until `remaining` points finish on `workers`
/// parallel workers, from the per-point wall histogram's p50 (the bucket
/// upper bound, so a mild over-estimate — the honest direction for an
/// ETA). `None` until at least one point has been timed. Clamped to 30
/// days so one pathological bucket cannot print a nonsense year.
pub fn eta_secs(point_wall: &Log2Histogram, remaining: usize, workers: usize) -> Option<f64> {
    if point_wall.is_empty() {
        return None;
    }
    if remaining == 0 {
        return Some(0.0);
    }
    let p50_micros = point_wall.quantile(0.5) as f64;
    let waves = (remaining as f64 / workers.max(1) as f64).ceil();
    const MAX_ETA_SECS: f64 = 30.0 * 24.0 * 3600.0;
    Some((waves * p50_micros / 1e6).min(MAX_ETA_SECS))
}

/// Renders an ETA compactly for progress lines: `3s`, `2m05s`,
/// `1h12m`, `4d07h`.
pub fn format_eta(secs: f64) -> String {
    let s = secs.max(0.0).round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else if s < 86_400 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else {
        format!("{}d{:02}h", s / 86_400, (s % 86_400) / 3600)
    }
}

/// The wall [`Duration`] of one point as heartbeat-histogram
/// microseconds (saturating; 30+ minute points all land in the top
/// buckets anyway).
pub fn wall_micros(wall: Duration) -> u64 {
    u64::try_from(wall.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_core::metrics::{Counter, Metrics};

    #[test]
    fn heartbeat_round_trips_through_json() {
        let (m, registry) = Metrics::enabled();
        m.add(Counter::PointsCompleted, 3);
        let mut hb = Heartbeat::starting(32);
        hb.done = 5;
        hb.cached = 2;
        hb.elapsed_secs = 1.25;
        hb.rate_pts_per_sec = 2.4;
        hb.eta_secs = Some(11.0);
        hb.point_wall.record(1500);
        hb.metrics = Some(registry.snapshot());
        let text = hb.to_json().encode();
        let back = Heartbeat::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, hb);
    }

    #[test]
    fn heartbeat_file_round_trips_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("gemmini-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        let mut hb = Heartbeat::starting(4);
        write_heartbeat(&path, &hb).unwrap();
        assert_eq!(read_heartbeat(&path).unwrap(), hb);
        hb.done = 4;
        hb.phase = "done".to_string();
        write_heartbeat(&path, &hb).unwrap();
        assert_eq!(read_heartbeat(&path).unwrap().done, 4);
        // No temp litter left behind.
        let litter = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with('.')
            })
            .count();
        assert_eq!(litter, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_age_tracks_rewrites() {
        assert!(heartbeat_age(Path::new("/nonexistent/definitely/not.json")).is_none());
        let path = std::env::temp_dir().join(format!("gemmini-hb-age-{}.json", std::process::id()));
        write_heartbeat(&path, &Heartbeat::starting(1)).unwrap();
        let age = heartbeat_age(&path).unwrap();
        assert!(
            age < Duration::from_secs(60),
            "fresh file, small age: {age:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_garbage_heartbeat_reads_as_none() {
        assert!(read_heartbeat(Path::new("/nonexistent/definitely/not.json")).is_none());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gemmini-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "{not json").unwrap();
        assert!(read_heartbeat(&path).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fleet_absorb_adds_counts_and_merges_histograms() {
        let mut a = Heartbeat::starting(16);
        a.done = 4;
        a.elapsed_secs = 10.0;
        a.rate_pts_per_sec = 0.4;
        a.eta_secs = Some(30.0);
        a.point_wall.record(1000);
        let mut b = Heartbeat::starting(16);
        b.done = 8;
        b.failed = 1;
        b.elapsed_secs = 12.0;
        b.rate_pts_per_sec = 0.66;
        b.eta_secs = Some(12.0);
        b.point_wall.record(9000);
        a.absorb(&b);
        assert_eq!(a.done, 12);
        assert_eq!(a.total, 32);
        assert_eq!(a.failed, 1);
        assert_eq!(a.elapsed_secs, 12.0);
        assert_eq!(a.eta_secs, Some(30.0), "fleet ETA is the slowest shard");
        assert_eq!(a.point_wall.count, 2);
    }

    #[test]
    fn eta_derivation_and_clamp() {
        assert_eq!(eta_secs(&Log2Histogram::new(), 10, 2), None);
        let mut h = Log2Histogram::new();
        // ~1 s points: bucket upper bound 2^20 - 1 us ≈ 1.05 s.
        for _ in 0..8 {
            h.record(1_000_000);
        }
        let eta = eta_secs(&h, 10, 2).unwrap();
        // 5 waves of ~1.05 s.
        assert!(eta > 4.0 && eta < 7.0, "eta {eta}");
        assert_eq!(eta_secs(&h, 0, 2), Some(0.0));
        // Clamp: absurd per-point walls cannot produce an absurd ETA.
        let mut worst = Log2Histogram::new();
        worst.record(u64::MAX);
        let clamped = eta_secs(&worst, 1_000_000, 1).unwrap();
        assert_eq!(clamped, 30.0 * 24.0 * 3600.0);
    }

    #[test]
    fn eta_formats_compactly() {
        assert_eq!(format_eta(3.4), "3s");
        assert_eq!(format_eta(125.0), "2m05s");
        assert_eq!(format_eta(4321.0), "1h12m");
        assert_eq!(format_eta(370_000.0), "4d06h");
    }
}
