//! OS-noise model.
//!
//! The paper argues that full-SoC, OS-capable simulation surfaces effects
//! bare-metal evaluation hides: "context switches, page table evictions,
//! and other unexpected events can happen at any time". This module injects
//! those events: a context switch costs CPU cycles and flushes the core's
//! translation state (TLBs and filter registers), so the accelerator's next
//! DMA bursts re-walk the page table.

use gemmini_mem::Cycle;

/// OS-noise configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsConfig {
    /// Cycles between context switches on each core (`None` = bare metal).
    pub context_switch_interval: Option<Cycle>,
    /// Whether a switch flushes the accelerator's translation state
    /// (sfence.vma on return).
    pub flush_translation_on_switch: bool,
}

impl OsConfig {
    /// Bare-metal: no OS events at all.
    pub fn bare_metal() -> Self {
        Self {
            context_switch_interval: None,
            flush_translation_on_switch: false,
        }
    }

    /// A Linux-like environment: a timer tick every `interval` cycles
    /// (e.g. 1 ms at 1 GHz = 1,000,000 cycles), flushing translations.
    pub fn linux(interval: Cycle) -> Self {
        Self {
            context_switch_interval: Some(interval),
            flush_translation_on_switch: true,
        }
    }
}

impl Default for OsConfig {
    fn default() -> Self {
        Self::bare_metal()
    }
}

/// Per-core OS event tracker.
#[derive(Debug, Clone, Copy)]
pub struct OsState {
    config: OsConfig,
    next_switch: Option<Cycle>,
    switches: u64,
}

impl OsState {
    /// Creates a tracker with the first switch scheduled.
    pub fn new(config: OsConfig) -> Self {
        Self {
            config,
            next_switch: config.context_switch_interval,
            switches: 0,
        }
    }

    /// Whether a context switch is due at or before `now`. Pair with
    /// [`Self::take`]: the next tick is scheduled only once the switch's
    /// cost has been applied, so a switch cost larger than the interval
    /// cannot livelock the simulation.
    pub fn due(&self, now: Cycle) -> bool {
        matches!(self.next_switch, Some(at) if now >= at)
    }

    /// Consumes the due switch: counts it and schedules the next tick one
    /// interval after `completed_at` (the core's time once the switch cost
    /// was applied).
    pub fn take(&mut self, completed_at: Cycle) {
        let interval = self
            .config
            .context_switch_interval
            .expect("take() is only called after due()");
        self.next_switch = Some(completed_at + interval);
        self.switches += 1;
    }

    /// Whether switches flush translation state.
    pub fn flushes_translation(&self) -> bool {
        self.config.flush_translation_on_switch
    }

    /// Context switches taken so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_metal_never_fires() {
        let s = OsState::new(OsConfig::bare_metal());
        assert!(!s.due(u64::MAX));
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn switches_fire_at_interval() {
        let mut s = OsState::new(OsConfig::linux(1000));
        assert!(!s.due(999));
        assert!(s.due(1000));
        s.take(1005); // switch cost applied; next tick at 2005
        assert!(!s.due(1500));
        assert!(s.due(2100));
        s.take(2105);
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn expensive_switches_cannot_livelock() {
        // Switch cost (5000) larger than the interval (100): the next tick
        // is scheduled after completion, so time always advances past it.
        let mut s = OsState::new(OsConfig::linux(100));
        let mut now = 100u64;
        for _ in 0..3 {
            assert!(s.due(now));
            now += 5000; // the switch's cost
            s.take(now);
            assert!(!s.due(now));
            now += 100;
        }
        assert_eq!(s.switches(), 3);
    }

    #[test]
    fn linux_config_flushes() {
        let s = OsState::new(OsConfig::linux(100));
        assert!(s.flushes_translation());
        assert!(!OsState::new(OsConfig::bare_metal()).flushes_translation());
    }
}
