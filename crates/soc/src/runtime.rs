//! The push-button software flow (the "high level" of the multi-level
//! programming interface).
//!
//! A [`NetworkExecution`] takes a [`Network`] description (parsed from the
//! textual format or built by the zoo — our ONNX stand-in), allocates every
//! buffer in the process's virtual address space, and executes the layers
//! in order, "mapping as many kernels as possible onto the Gemmini-generated
//! accelerator": conv/matmul/residual-add/pool run on the accelerator
//! (subject to which optional blocks the instance has), softmax/layer-norm
//! stay on the host CPU.
//!
//! Data layout: activations are NHWC (pixel-major) in memory because that
//! is what GEMM-lowered convolutions naturally produce; the reference
//! executor ([`reference_forward`]) mirrors the exact arithmetic (same
//! scales, same read-out path) so functional runs can be checked
//! bit-for-bit.

use crate::kernel::{
    pack_b_panels, packed_b_len, ASource, CpuLayerKernel, DwConvKernel, Im2colParams, Kernel,
    KernelEnv, MatmulParams, PoolKernel, ResAddKernel, StepOutcome, TiledMatmulKernel,
};
use gemmini_core::config::GemminiConfig;
use gemmini_core::peripherals::readout_row;
use gemmini_core::AccelError;
use gemmini_dnn::graph::{Layer, LayerClass, Network, PoolKind};
use gemmini_dnn::layout::{from_nhwc, to_nhwc};
use gemmini_dnn::ops::conv::{conv2d, dwconv2d, ConvSpec};
use gemmini_dnn::ops::im2col::{im2col_nhwc, weights_to_matrix_nhwc};
use gemmini_dnn::ops::matmul;
use gemmini_dnn::ops::pool::{avgpool2d_i8, maxpool2d, PoolSpec};
use gemmini_dnn::ops::resadd_i8;
use gemmini_dnn::tensor::Tensor;
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::Cycle;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;

/// Recorded timing of one executed layer.
#[derive(Debug, Clone)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Layer class (for the Fig. 9 per-class aggregation).
    pub class: LayerClass,
    /// Core-local start cycle.
    pub start: Cycle,
    /// Core-local end cycle.
    pub end: Cycle,
}

impl LayerTiming {
    /// Cycles this layer took.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

#[derive(Debug, Clone, Copy)]
struct Placement {
    weights: Option<VirtAddr>,
    output: VirtAddr,
    patch: Option<VirtAddr>,
    out_elements: usize,
}

/// Output scale used for conv/matmul layers of reduction depth `k`: keeps
/// int8 outputs well-spread for the synthetic value distribution
/// (uniform in [-64, 63]).
pub fn scale_for_k(k: usize) -> f32 {
    2.0 / (64.0 * (k as f32).sqrt())
}

/// Deterministic per-layer weight seed.
pub fn weight_seed(seed: u64, layer: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(1000 + layer as u64)
}

fn round_up(bytes: usize, to: usize) -> usize {
    bytes.div_ceil(to) * to
}

/// Writes bytes to virtual memory through the page table (functional path).
pub fn write_virt(space: &AddressSpace, data: &mut MainMemory, va: VirtAddr, bytes: &[u8]) {
    let mut off = 0usize;
    while off < bytes.len() {
        let cur = va.add(off as u64);
        let pa = space
            .translate(cur)
            .expect("runtime buffers are always mapped");
        let n = ((PAGE_SIZE - cur.offset_in_page()) as usize).min(bytes.len() - off);
        data.write(pa, &bytes[off..off + n]);
        off += n;
    }
}

/// Reads bytes from virtual memory through the page table (functional path).
pub fn read_virt(space: &AddressSpace, data: &MainMemory, va: VirtAddr, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut off = 0usize;
    while off < len {
        let cur = va.add(off as u64);
        let pa = space
            .translate(cur)
            .expect("runtime buffers are always mapped");
        let n = ((PAGE_SIZE - cur.offset_in_page()) as usize).min(len - off);
        let mut buf = vec![0u8; n];
        data.read(pa, &mut buf);
        out[off..off + n].copy_from_slice(&buf);
        off += n;
    }
    out
}

fn as_i8(bytes: &[u8]) -> Vec<i8> {
    bytes.iter().map(|&b| b as i8).collect()
}

fn as_u8(vals: &[i8]) -> Vec<u8> {
    vals.iter().map(|&v| v as u8).collect()
}

/// How many int8 elements a layer's (primary) input holds.
fn layer_input_elements(layer: &Layer) -> usize {
    match *layer {
        Layer::Conv {
            in_channels, in_hw, ..
        } => in_channels * in_hw.0 * in_hw.1,
        Layer::DwConv {
            channels, in_hw, ..
        } => channels * in_hw.0 * in_hw.1,
        Layer::Matmul { m, k, .. } => m * k,
        Layer::ResAdd { elements } => elements,
        Layer::Pool {
            channels, in_hw, ..
        } => channels * in_hw.0 * in_hw.1,
        Layer::LayerNorm { rows, cols } | Layer::Softmax { rows, cols } => rows * cols,
    }
}

/// Runs a sequence of sub-kernels back to back (e.g. CPU im2col followed by
/// the GEMM).
struct SequenceKernel {
    kernels: Vec<Box<dyn Kernel>>,
    idx: usize,
}

impl Kernel for SequenceKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        while self.idx < self.kernels.len() {
            match self.kernels[self.idx].step(env)? {
                StepOutcome::Working => return Ok(StepOutcome::Working),
                StepOutcome::Done => self.idx += 1,
            }
            if self.idx < self.kernels.len() {
                return Ok(StepOutcome::Working);
            }
        }
        Ok(StepOutcome::Done)
    }
}

/// Executes one network on one core, layer by layer, as a resumable state
/// machine.
pub struct NetworkExecution {
    net: Network,
    accel_cfg: GemminiConfig,
    input_va: VirtAddr,
    input_elements: usize,
    placements: Vec<Placement>,
    current: usize,
    kernel: Option<Box<dyn Kernel>>,
    layer_start: Cycle,
    timings: Vec<LayerTiming>,
    seed: u64,
}

impl std::fmt::Debug for NetworkExecution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkExecution")
            .field("net", &self.net.name())
            .field("current", &self.current)
            .finish()
    }
}

impl NetworkExecution {
    /// Allocates every buffer for `net` in `space` and, when `data` is
    /// provided, initializes input and weights with deterministic synthetic
    /// values derived from `seed`.
    pub fn new(
        net: Network,
        accel_cfg: GemminiConfig,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        mut data: Option<&mut MainMemory>,
        seed: u64,
    ) -> Self {
        let dim = accel_cfg.dim();
        let pad = dim.max(64);
        let input_elements = net
            .layers()
            .first()
            .map(|l| layer_input_elements(&l.layer))
            .unwrap_or(1);
        let input_va = space.alloc(frames, round_up(input_elements, pad) as u64);

        let mut placements = Vec::with_capacity(net.len());
        for (i, nl) in net.layers().iter().enumerate() {
            let l = &nl.layer;
            // Stationary operands are stored panel-packed (see
            // `pack_b_panels`), which pads each panel to `dim` columns.
            let weights_len = match *l {
                Layer::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                    ..
                } => packed_b_len(kernel * kernel * in_channels, out_channels, dim),
                Layer::DwConv {
                    channels, kernel, ..
                } => channels * kernel * kernel * dim,
                Layer::Matmul { k, n, .. } => packed_b_len(k, n, dim),
                _ => 0,
            };
            let weights =
                (weights_len > 0).then(|| space.alloc(frames, round_up(weights_len, pad) as u64));
            let out_elements = l.output_bytes() as usize;
            let output = space.alloc(frames, round_up(out_elements.max(1), pad) as u64);
            // Patch scratch for CPU-side im2col.
            let patch = match l {
                Layer::Conv { .. } | Layer::DwConv { .. } if !accel_cfg.has_im2col => {
                    // `as_gemm` already folds channels into m for depthwise.
                    let (m, k, _n) = l.as_gemm().expect("conv lowers to GEMM");
                    Some(space.alloc(frames, round_up(m * k, pad) as u64))
                }
                _ => None,
            };
            placements.push(Placement {
                weights,
                output,
                patch,
                out_elements,
            });

            // Functional weight initialization.
            if let Some(mem) = data.as_deref_mut() {
                let wseed = weight_seed(seed, i);
                match *l {
                    Layer::Conv {
                        in_channels,
                        out_channels,
                        kernel,
                        ..
                    } => {
                        let w = Tensor::<i8>::random(
                            &[out_channels, in_channels, kernel, kernel],
                            wseed,
                        );
                        let mat = weights_to_matrix_nhwc(&w);
                        let panels = pack_b_panels(&mat, dim);
                        write_virt(
                            space,
                            mem,
                            placements[i].weights.expect("conv has weights"),
                            &as_u8(&panels),
                        );
                    }
                    Layer::DwConv {
                        channels, kernel, ..
                    } => {
                        let w = Tensor::<i8>::random(&[channels, kernel, kernel], wseed);
                        // Per-channel [k², 1] panels, each padded to dim cols.
                        let kk = kernel * kernel;
                        let mut panels = Vec::with_capacity(channels * kk * dim);
                        for ch in 0..channels {
                            let col = Tensor::from_vec(
                                &[kk, 1],
                                w.as_slice()[ch * kk..(ch + 1) * kk].to_vec(),
                            );
                            panels.extend(pack_b_panels(&col, dim));
                        }
                        write_virt(
                            space,
                            mem,
                            placements[i].weights.expect("dwconv has weights"),
                            &as_u8(&panels),
                        );
                    }
                    Layer::Matmul { k, n, .. } => {
                        let w = Tensor::<i8>::random(&[k, n], wseed);
                        let panels = pack_b_panels(&w, dim);
                        write_virt(
                            space,
                            mem,
                            placements[i].weights.expect("matmul has weights"),
                            &as_u8(&panels),
                        );
                    }
                    _ => {}
                }
            }
        }

        // Functional input initialization (NHWC for spatial layers).
        if let Some(mem) = data {
            if let Some(first) = net.layers().first() {
                let bytes = match first.layer {
                    Layer::Conv {
                        in_channels, in_hw, ..
                    } => {
                        let t = Tensor::<i8>::random(&[1, in_channels, in_hw.0, in_hw.1], seed);
                        as_u8(&to_nhwc(&t))
                    }
                    Layer::DwConv {
                        channels, in_hw, ..
                    } => {
                        let t = Tensor::<i8>::random(&[1, channels, in_hw.0, in_hw.1], seed);
                        as_u8(&to_nhwc(&t))
                    }
                    _ => {
                        let t = Tensor::<i8>::random(&[input_elements], seed);
                        as_u8(t.as_slice())
                    }
                };
                write_virt(space, mem, input_va, &bytes);
            }
        }

        Self {
            net,
            accel_cfg,
            input_va,
            input_elements,
            placements,
            current: 0,
            kernel: None,
            layer_start: 0,
            timings: Vec::new(),
            seed,
        }
    }

    /// The network being executed.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Per-layer timings recorded so far.
    pub fn timings(&self) -> &[LayerTiming] {
        &self.timings
    }

    /// The final layer's output buffer.
    pub fn output_va(&self) -> VirtAddr {
        self.placements
            .last()
            .map(|p| p.output)
            .unwrap_or(self.input_va)
    }

    /// Element count of the final output.
    pub fn output_elements(&self) -> usize {
        self.placements
            .last()
            .map(|p| p.out_elements)
            .unwrap_or(self.input_elements)
    }

    /// Whether every layer has completed.
    pub fn is_finished(&self) -> bool {
        self.current >= self.net.len()
    }

    fn input_of(&self, i: usize) -> VirtAddr {
        if i == 0 {
            self.input_va
        } else {
            self.placements[i - 1].output
        }
    }

    /// The second residual operand: the most recent earlier buffer with a
    /// matching element count (the block input for identity shortcuts, the
    /// projection output for projection shortcuts).
    fn resadd_second_operand(&self, i: usize, elements: usize) -> VirtAddr {
        for j in (0..i.saturating_sub(1)).rev() {
            if self.placements[j].out_elements == elements {
                return self.placements[j].output;
            }
        }
        if self.input_elements == elements {
            return self.input_va;
        }
        // Degenerate fallback: reuse the primary operand.
        self.input_of(i)
    }

    fn read_input_nchw(
        &self,
        env: &KernelEnv<'_>,
        i: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Option<Tensor<i8>> {
        let data = env.ctx.data.as_deref()?;
        let bytes = read_virt(env.ctx.space, data, self.input_of(i), c * h * w);
        Some(from_nhwc(&as_i8(&bytes), 1, c, h, w))
    }

    fn prepare_layer(&mut self, env: &mut KernelEnv<'_>) -> Box<dyn Kernel> {
        let i = self.current;
        let layer = self.net.layers()[i].layer.clone();
        let place = self.placements[i];
        let cfg = self.accel_cfg.clone();
        match layer {
            Layer::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => {
                let spec = ConvSpec {
                    kernel,
                    stride,
                    padding,
                };
                let (oh, ow) = (spec.out_size(in_hw.0), spec.out_size(in_hw.1));
                let m = oh * ow;
                let kdim = kernel * kernel * in_channels;
                let params = MatmulParams {
                    a: place.patch.unwrap_or(VirtAddr::new(0)),
                    b: place.weights.expect("conv has weights"),
                    c: place.output,
                    m,
                    k: kdim,
                    n: out_channels,
                    c_stride: out_channels,
                    activation,
                    acc_scale: scale_for_k(kdim),
                };
                let input_nchw = self.read_input_nchw(env, i, in_channels, in_hw.0, in_hw.1);
                if cfg.has_im2col {
                    let patches = input_nchw.map(|t| im2col_nhwc(&t, spec));
                    Box::new(TiledMatmulKernel::new(
                        &cfg,
                        params,
                        ASource::Im2col(Im2colParams {
                            input: self.input_of(i),
                            channels: in_channels,
                            in_h: in_hw.0,
                            in_w: in_hw.1,
                            row_pitch: in_hw.1 * in_channels,
                            kernel,
                            stride,
                            padding,
                            out_w: ow,
                            patches,
                        }),
                    ))
                } else {
                    // CPU im2col: the host expands patches into memory, then
                    // the accelerator consumes a plain matrix.
                    if let (Some(t), Some(patch_va)) = (input_nchw, place.patch) {
                        let patches = im2col_nhwc(&t, spec);
                        // Functional write occurs up front; its time cost is
                        // the CpuLayerKernel below.
                        if let Some(data) = env.ctx.data.as_deref_mut() {
                            write_virt(env.ctx.space, data, patch_va, &as_u8(patches.as_slice()));
                        }
                    }
                    let cycles = env.cpu.im2col_cycles(&layer);
                    Box::new(SequenceKernel {
                        kernels: vec![
                            Box::new(CpuLayerKernel::new(cycles)),
                            Box::new(TiledMatmulKernel::new(&cfg, params, ASource::Memory)),
                        ],
                        idx: 0,
                    })
                }
            }
            Layer::DwConv {
                channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => {
                let spec = ConvSpec {
                    kernel,
                    stride,
                    padding,
                };
                let (oh, ow) = (spec.out_size(in_hw.0), spec.out_size(in_hw.1));
                let input_nchw = self.read_input_nchw(env, i, channels, in_hw.0, in_hw.1);
                let patches_per_channel = input_nchw.as_ref().map(|t| {
                    (0..channels)
                        .map(|ch| {
                            let plane = Tensor::from_vec(
                                &[1, 1, in_hw.0, in_hw.1],
                                t.as_slice()[ch * in_hw.0 * in_hw.1..(ch + 1) * in_hw.0 * in_hw.1]
                                    .to_vec(),
                            );
                            im2col_nhwc(&plane, spec)
                        })
                        .collect::<Vec<_>>()
                });
                let scale = scale_for_k(kernel * kernel);
                if cfg.has_im2col {
                    Box::new(DwConvKernel::new(
                        &cfg,
                        self.input_of(i),
                        place.weights.expect("dwconv has weights"),
                        place.output,
                        channels,
                        in_hw,
                        (oh, ow),
                        kernel,
                        stride,
                        padding,
                        activation,
                        scale,
                        patches_per_channel,
                        None,
                    ))
                } else {
                    let patch_va = place.patch.expect("cpu-im2col dwconv has patch buffer");
                    if let (Some(patches), Some(data)) =
                        (patches_per_channel.as_ref(), env.ctx.data.as_deref_mut())
                    {
                        let kk = kernel * kernel;
                        let m = oh * ow;
                        for (ch, p) in patches.iter().enumerate() {
                            write_virt(
                                env.ctx.space,
                                data,
                                patch_va.add((ch * m * kk) as u64),
                                &as_u8(p.as_slice()),
                            );
                        }
                    }
                    let cycles = env.cpu.im2col_cycles(&layer);
                    Box::new(SequenceKernel {
                        kernels: vec![
                            Box::new(CpuLayerKernel::new(cycles)),
                            Box::new(DwConvKernel::new(
                                &cfg,
                                self.input_of(i),
                                place.weights.expect("dwconv has weights"),
                                place.output,
                                channels,
                                in_hw,
                                (oh, ow),
                                kernel,
                                stride,
                                padding,
                                activation,
                                scale,
                                None,
                                Some(patch_va),
                            )),
                        ],
                        idx: 0,
                    })
                }
            }
            Layer::Matmul {
                m,
                k,
                n,
                activation,
            } => Box::new(TiledMatmulKernel::new(
                &cfg,
                MatmulParams {
                    a: self.input_of(i),
                    b: place.weights.expect("matmul has weights"),
                    c: place.output,
                    m,
                    k,
                    n,
                    c_stride: n,
                    activation,
                    acc_scale: scale_for_k(k),
                },
                ASource::Memory,
            )),
            Layer::ResAdd { elements } => {
                let a = self.input_of(i);
                let b = self.resadd_second_operand(i, elements);
                Box::new(ResAddKernel::new(&cfg, a, b, place.output, elements))
            }
            Layer::Pool {
                kind,
                size,
                stride,
                padding,
                channels,
                in_hw,
            } => {
                if cfg.has_pooling {
                    let spec = PoolSpec {
                        size,
                        stride,
                        padding,
                    };
                    let (oh, ow) = (spec.out_size(in_hw.0), spec.out_size(in_hw.1));
                    let out_data = self
                        .read_input_nchw(env, i, channels, in_hw.0, in_hw.1)
                        .map(|t| {
                            let pooled = match kind {
                                PoolKind::Max => maxpool2d(&t, spec),
                                PoolKind::Avg => avgpool2d_i8(&t, spec),
                            };
                            // NHWC bytes, flat: oh rows of ow*c bytes.
                            as_u8(&to_nhwc(&pooled))
                        });
                    // Stream NHWC rows: treat the feature map as 1 "channel"
                    // of (h, w*c) for the row geometry.
                    Box::new(PoolKernel::new(
                        &cfg,
                        self.input_of(i),
                        place.output,
                        1,
                        (in_hw.0, in_hw.1 * channels),
                        (oh, ow * channels),
                        size,
                        out_data,
                    ))
                } else {
                    Box::new(CpuLayerKernel::new(env.cpu.layer_cycles(&layer)))
                }
            }
            Layer::LayerNorm { .. } | Layer::Softmax { .. } => {
                Box::new(CpuLayerKernel::new(env.cpu.layer_cycles(&layer)))
            }
        }
    }

    /// Executes one kernel step of the current layer.
    ///
    /// # Errors
    ///
    /// Propagates accelerator errors.
    pub fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if self.is_finished() {
            return Ok(StepOutcome::Done);
        }
        if self.kernel.is_none() {
            self.layer_start = env.accel.now();
            let k = self.prepare_layer(env);
            self.kernel = Some(k);
        }
        let outcome = self
            .kernel
            .as_mut()
            .expect("kernel prepared above")
            .step(env)?;
        if outcome == StepOutcome::Done {
            let nl = &self.net.layers()[self.current];
            self.timings.push(LayerTiming {
                name: nl.name.clone(),
                class: nl.layer.class(),
                start: self.layer_start,
                end: env.accel.now(),
            });
            self.kernel = None;
            self.current += 1;
        }
        Ok(if self.is_finished() {
            StepOutcome::Done
        } else {
            StepOutcome::Working
        })
    }

    /// Seed used for synthetic tensors.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Golden-model execution of `net` with the same synthetic tensors, layouts,
/// scales and read-out arithmetic as [`NetworkExecution`]; returns the final
/// output bytes (in the runtime's memory layout) for bit-exact comparison.
///
/// Norm-class layers are not modeled functionally (they run on the CPU in
/// both paths); networks containing them should be compared layer-wise
/// before the first norm layer.
pub fn reference_forward(net: &Network, seed: u64) -> Vec<i8> {
    let mut outputs: Vec<Vec<i8>> = Vec::new();
    let mut input_elements = net
        .layers()
        .first()
        .map(|l| layer_input_elements(&l.layer))
        .unwrap_or(1);
    let _ = &mut input_elements;

    let first_input: Vec<i8> = match net.layers().first().map(|l| &l.layer) {
        Some(Layer::Conv {
            in_channels, in_hw, ..
        }) => {
            let t = Tensor::<i8>::random(&[1, *in_channels, in_hw.0, in_hw.1], seed);
            to_nhwc(&t)
        }
        Some(Layer::DwConv {
            channels, in_hw, ..
        }) => {
            let t = Tensor::<i8>::random(&[1, *channels, in_hw.0, in_hw.1], seed);
            to_nhwc(&t)
        }
        Some(l) => Tensor::<i8>::random(&[layer_input_elements(l)], seed).into_vec(),
        None => vec![],
    };

    let mut prev = first_input.clone();
    for (i, nl) in net.layers().iter().enumerate() {
        let wseed = weight_seed(seed, i);
        let out: Vec<i8> = match &nl.layer {
            Layer::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => {
                let spec = ConvSpec {
                    kernel: *kernel,
                    stride: *stride,
                    padding: *padding,
                };
                let input = from_nhwc(&prev, 1, *in_channels, in_hw.0, in_hw.1);
                let w =
                    Tensor::<i8>::random(&[*out_channels, *in_channels, *kernel, *kernel], wseed);
                let acc = conv2d(&input, &w, spec);
                let scale = scale_for_k(kernel * kernel * in_channels);
                let (oh, ow) = (spec.out_size(in_hw.0), spec.out_size(in_hw.1));
                // Read out per pixel row (NHWC): [oc] per pixel.
                let mut out = Vec::with_capacity(oh * ow * out_channels);
                for y in 0..oh {
                    for x in 0..ow {
                        let row: Vec<i32> =
                            (0..*out_channels).map(|o| acc.at4(0, o, y, x)).collect();
                        out.extend(readout_row(&row, *activation, scale));
                    }
                }
                out
            }
            Layer::DwConv {
                channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => {
                let spec = ConvSpec {
                    kernel: *kernel,
                    stride: *stride,
                    padding: *padding,
                };
                let input = from_nhwc(&prev, 1, *channels, in_hw.0, in_hw.1);
                let w = Tensor::<i8>::random(&[*channels, *kernel, *kernel], wseed);
                let acc = dwconv2d(&input, &w, spec);
                let scale = scale_for_k(kernel * kernel);
                let (oh, ow) = (spec.out_size(in_hw.0), spec.out_size(in_hw.1));
                let mut out = Vec::with_capacity(oh * ow * channels);
                for y in 0..oh {
                    for x in 0..ow {
                        let row: Vec<i32> = (0..*channels).map(|c| acc.at4(0, c, y, x)).collect();
                        out.extend(readout_row(&row, *activation, scale));
                    }
                }
                out
            }
            Layer::Matmul {
                m,
                k,
                n,
                activation,
            } => {
                let a = Tensor::from_vec(&[*m, *k], prev.clone());
                let b = Tensor::<i8>::random(&[*k, *n], wseed);
                let acc = matmul(&a, &b);
                let scale = scale_for_k(*k);
                let mut out = Vec::with_capacity(m * n);
                for r in 0..*m {
                    out.extend(readout_row(
                        &acc.as_slice()[r * n..(r + 1) * n],
                        *activation,
                        scale,
                    ));
                }
                out
            }
            Layer::ResAdd { elements } => {
                let b_bytes = outputs[..i.saturating_sub(1)]
                    .iter()
                    .rev()
                    .find(|o| o.len() == *elements)
                    .cloned()
                    .or_else(|| (first_input.len() == *elements).then(|| first_input.clone()))
                    .unwrap_or_else(|| prev.clone());
                let a = Tensor::from_vec(&[*elements], prev.clone());
                let b = Tensor::from_vec(&[*elements], b_bytes);
                resadd_i8(&a, &b).into_vec()
            }
            Layer::Pool {
                kind,
                size,
                stride,
                padding,
                channels,
                in_hw,
            } => {
                let spec = PoolSpec {
                    size: *size,
                    stride: *stride,
                    padding: *padding,
                };
                let input = from_nhwc(&prev, 1, *channels, in_hw.0, in_hw.1);
                let pooled = match kind {
                    PoolKind::Max => maxpool2d(&input, spec),
                    PoolKind::Avg => avgpool2d_i8(&input, spec),
                };
                to_nhwc(&pooled)
            }
            Layer::LayerNorm { .. } | Layer::Softmax { .. } => prev.clone(),
        };
        outputs.push(out.clone());
        prev = out;
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_formula_keeps_outputs_in_range() {
        // For uniform [-64,63] operands the scaled std stays well inside i8.
        for k in [9usize, 64, 576, 2048] {
            let s = scale_for_k(k);
            let acc_std = 64.0f32 / (3.0f32).sqrt() * (k as f32).sqrt() * 36.9;
            let out_std = acc_std * s;
            assert!(out_std < 127.0 * 10.0, "k={k} out_std={out_std}");
            assert!(s > 0.0);
        }
    }

    #[test]
    fn weight_seeds_are_distinct_per_layer() {
        let a = weight_seed(42, 0);
        let b = weight_seed(42, 1);
        let c = weight_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn input_element_counts() {
        use gemmini_dnn::graph::Activation;
        assert_eq!(
            layer_input_elements(&Layer::Matmul {
                m: 2,
                k: 3,
                n: 4,
                activation: Activation::None
            }),
            6
        );
        assert_eq!(layer_input_elements(&Layer::ResAdd { elements: 7 }), 7);
    }
}
