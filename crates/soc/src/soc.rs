//! SoC configuration and construction (Fig. 5).
//!
//! An SoC is a set of cores — each a host CPU, a Gemmini-generated
//! accelerator, and its private translation hardware — sharing one memory
//! system (bus → L2 → DRAM) and one pool of physical frames. The Fig. 9
//! case-study configurations (`Base`, `BigSP`, `BigL2`) are provided as
//! constructors.

use crate::os::OsConfig;
use gemmini_core::config::GemminiConfig;
use gemmini_core::Accelerator;
use gemmini_cpu::{CpuKind, CpuModel};
use gemmini_mem::cache::CacheConfig;
use gemmini_mem::dram::MainMemory;
use gemmini_mem::hierarchy::MemorySystemConfig;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

/// One core: host CPU + accelerator + translation configuration.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Host CPU flavor.
    pub cpu: CpuKind,
    /// Accelerator instance parameters.
    pub accel: GemminiConfig,
    /// Translation hardware (private TLB, shared L2 TLB, filters, PTW).
    pub translation: TranslationConfig,
}

impl CoreConfig {
    /// The paper's edge core: Rocket + the edge accelerator + the default
    /// translation system.
    pub fn edge() -> Self {
        Self {
            cpu: CpuKind::Rocket,
            accel: GemminiConfig::edge(),
            translation: TranslationConfig::default(),
        }
    }
}

/// Whole-SoC configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// The cores (one accelerator per core, as in Fig. 5).
    pub cores: Vec<CoreConfig>,
    /// Shared memory path (bus, L2, DRAM).
    pub mem: MemorySystemConfig,
    /// OS-noise model.
    pub os: OsConfig,
}

impl SocConfig {
    /// Single-core edge SoC with a 1 MiB shared L2 (the Fig. 9 `Base`).
    pub fn edge_single_core() -> Self {
        Self {
            cores: vec![CoreConfig::edge()],
            mem: MemorySystemConfig {
                l2: CacheConfig::l2_mb(1),
                ..MemorySystemConfig::default()
            },
            os: OsConfig::bare_metal(),
        }
    }

    /// Dual-core edge SoC (Fig. 5): two CPUs, each with its own
    /// accelerator, sharing the L2.
    pub fn edge_dual_core() -> Self {
        Self {
            cores: vec![CoreConfig::edge(), CoreConfig::edge()],
            ..Self::edge_single_core()
        }
    }

    /// Applies a Fig. 9a memory partition to every core: per-core
    /// scratchpad/accumulator KiB and the shared L2 size in MiB.
    pub fn with_partition(mut self, sp_kb: usize, acc_kb: usize, l2_mb: u64) -> Self {
        for core in &mut self.cores {
            core.accel.sp_capacity_kb = sp_kb;
            core.accel.acc_capacity_kb = acc_kb;
        }
        self.mem.l2 = CacheConfig::l2_mb(l2_mb);
        self
    }

    /// Fig. 9a `Base`: 256 KiB scratchpad + 256 KiB accumulator per core,
    /// 1 MiB L2.
    pub fn partition_base(cores: usize) -> Self {
        let base = if cores == 1 {
            Self::edge_single_core()
        } else {
            Self {
                cores: vec![CoreConfig::edge(); cores],
                ..Self::edge_single_core()
            }
        };
        base.with_partition(256, 256, 1)
    }

    /// Fig. 9a `BigSP`: 512 KiB scratchpad + 512 KiB accumulator per core,
    /// 1 MiB L2.
    pub fn partition_big_sp(cores: usize) -> Self {
        Self::partition_base(cores).with_partition(512, 512, 1)
    }

    /// Fig. 9a `BigL2`: 256 KiB scratchpad + 256 KiB accumulator per core,
    /// 2 MiB L2.
    pub fn partition_big_l2(cores: usize) -> Self {
        Self::partition_base(cores).with_partition(256, 256, 2)
    }

    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores.is_empty() {
            return Err("SoC needs at least one core".to_string());
        }
        self.mem.validate()?;
        for (i, c) in self.cores.iter().enumerate() {
            c.accel
                .validate()
                .map_err(|e| format!("core {i} accelerator: {e}"))?;
        }
        Ok(())
    }
}

/// One instantiated core.
#[derive(Debug)]
pub struct Core {
    /// Core index (also its DMA port id).
    pub id: usize,
    /// Host-CPU timing model.
    pub cpu: CpuModel,
    /// The core's accelerator.
    pub accel: Accelerator,
    /// The core's translation hardware.
    pub translation: TranslationSystem,
    /// The process address space running on this core.
    pub space: AddressSpace,
}

/// An instantiated SoC: cores + shared memory state.
#[derive(Debug)]
pub struct Soc {
    /// The cores.
    pub cores: Vec<Core>,
    /// Shared bus → L2 → DRAM.
    pub mem: MemorySystem,
    /// Functional physical memory (None for timing-only runs).
    pub data: Option<MainMemory>,
    /// Shared physical frame allocator.
    pub frames: FrameAllocator,
}

impl Soc {
    /// Instantiates an SoC. `functional` selects whether physical bytes are
    /// modeled.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SocConfig::validate`].
    pub fn new(config: &SocConfig, functional: bool) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SoC configuration: {e}");
        }
        let mut frames = FrameAllocator::new();
        let cores = config
            .cores
            .iter()
            .enumerate()
            .map(|(id, c)| {
                let mut tc = c.translation;
                // Give each core's PTW a distinct port well away from DMA
                // ports (which are the core ids).
                tc.ptw.port = 1000 + id;
                Core {
                    id,
                    cpu: CpuModel::new(c.cpu),
                    accel: Accelerator::new(c.accel.clone()),
                    translation: TranslationSystem::new(tc),
                    space: AddressSpace::new(&mut frames),
                }
            })
            .collect();
        Self {
            cores,
            mem: MemorySystem::new(config.mem),
            data: functional.then(MainMemory::new),
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_dual_core_construction() {
        let s1 = Soc::new(&SocConfig::edge_single_core(), false);
        assert_eq!(s1.cores.len(), 1);
        assert!(s1.data.is_none());
        let s2 = Soc::new(&SocConfig::edge_dual_core(), true);
        assert_eq!(s2.cores.len(), 2);
        assert!(s2.data.is_some());
    }

    #[test]
    fn partition_presets_match_fig9a() {
        let base = SocConfig::partition_base(1);
        assert_eq!(base.cores[0].accel.sp_capacity_kb, 256);
        assert_eq!(base.cores[0].accel.acc_capacity_kb, 256);
        assert_eq!(base.mem.l2.size_bytes, 1 << 20);

        let big_sp = SocConfig::partition_big_sp(2);
        assert_eq!(big_sp.cores.len(), 2);
        assert_eq!(big_sp.cores[0].accel.sp_capacity_kb, 512);
        assert_eq!(big_sp.mem.l2.size_bytes, 1 << 20);

        let big_l2 = SocConfig::partition_big_l2(2);
        assert_eq!(big_l2.cores[0].accel.sp_capacity_kb, 256);
        assert_eq!(big_l2.mem.l2.size_bytes, 2 << 20);
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        let mut soc = Soc::new(&SocConfig::edge_dual_core(), false);
        let va0 = soc.cores[0].space.alloc(&mut soc.frames, 4096);
        let va1 = soc.cores[1].space.alloc(&mut soc.frames, 4096);
        // Same virtual layout, different physical frames.
        assert_eq!(va0, va1);
        assert_ne!(
            soc.cores[0].space.translate(va0),
            soc.cores[1].space.translate(va1)
        );
    }

    #[test]
    fn empty_soc_is_rejected() {
        let cfg = SocConfig {
            cores: vec![],
            ..SocConfig::edge_single_core()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_surfaces_core_errors() {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel.sp_banks = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("core 0"));
    }
}
