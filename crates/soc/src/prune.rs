//! Attribution-guided sweep pruning.
//!
//! A sweep grid usually varies one hardware axis inside groups of
//! otherwise-identical design points (e.g. fig8 sweeps the shared-TLB
//! size for each `(private, filters)` combination). Once one point of a
//! group — its *basis* — has run, its [`CycleAttribution`] tells us
//! which bucket dominates its cycle count. If the swept axis cannot move
//! that bucket ([`SweepAxis::movable_buckets`]), and the buckets it *can*
//! move hold at most the policy's declared tolerance of total cycles,
//! then no setting of the axis can shift the point's total by more than
//! that tolerance: the remaining group members are skipped and served
//! the basis's report as a prediction.
//!
//! Soundness invariants (enforced by `crates/soc/tests/prune.rs` and the
//! CI `pruned` job):
//!
//! * Pruning never alters an *emitted* report: every point that runs
//!   produces bit-identical output to the unpruned sweep, because the
//!   decision layer only ever removes work — it never re-orders or
//!   re-parameterizes the simulations that do run.
//! * Every pruned point's checkpoint entry carries [`PruneEvidence`]:
//!   the basis label + fingerprint, the dominant bucket, and the
//!   axis-insensitivity rule that justified the skip. `--resume` replays
//!   a pruned entry only while its basis fingerprint still matches the
//!   grid; `--merge` re-validates the same agreement across shards.
//! * The basis of a group is always simulated, never predicted.

use gemmini_mem::json::{FromJson, Json, JsonError, ToJson};
use gemmini_mem::stats::{CycleAttribution, CycleBucket, SweepAxis};

use crate::run::SocReport;
use crate::sweep::SweepResult;

/// Payloads that can expose a [`CycleAttribution`] to the prune layer.
///
/// The default implementation returns `None`, which makes every point
/// undecidable and therefore always simulated — so payload types that
/// carry no attribution (smoke-test integers, reduced summaries) pass
/// through the pruned executor unchanged.
pub trait Attributed {
    /// The payload's cycle attribution, if it carries one.
    fn cycle_attribution(&self) -> Option<&CycleAttribution> {
        None
    }
}

impl Attributed for SocReport {
    fn cycle_attribution(&self) -> Option<&CycleAttribution> {
        Some(&self.attribution)
    }
}

/// Smoke-test sweeps carry bare integers; they are never prunable.
impl Attributed for u64 {}

/// One prune group: a basis point that is always simulated, plus the
/// members that may be predicted from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneGroup {
    /// Label of the point whose attribution decides the group. Pick the
    /// axis-pessimal setting (e.g. the smallest TLB along a TLB axis) so
    /// the movable-bucket fraction is measured where it is largest.
    pub basis: String,
    /// Labels of the points that may be skipped. Must not contain the
    /// basis.
    pub members: Vec<String>,
}

/// A prune policy: the swept axis, the per-point tolerance, and the
/// grid's group structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunePolicy {
    /// The hardware axis this sweep varies within each group.
    pub axis: SweepAxis,
    /// Maximum fraction of a basis's total cycles the axis may plausibly
    /// move for its members to be pruned. Also the declared bound on the
    /// relative total-cycle error of a predicted point.
    pub tolerance: f64,
    /// The grid's groups. Labels absent from every group always run.
    pub groups: Vec<PruneGroup>,
}

/// The outcome of [`PrunePolicy::decide`] for one member point.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneDecision {
    /// The point must be simulated.
    Run(RunReason),
    /// The point may be skipped; the evidence names why.
    Prune(PruneEvidence),
}

/// Why a grouped point still has to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunReason {
    /// The basis's dominant bucket is one the axis can move.
    DominantMovable,
    /// The axis-movable buckets hold more than the tolerance.
    MovableAboveTolerance,
    /// The runner-up bucket trails the dominant by less than the
    /// movable share, so the prediction could not promise the dominant
    /// bucket survives the axis.
    DominanceFragile,
    /// The basis carries no attribution (functional run, bare payload).
    NoAttribution,
}

/// The recorded justification for skipping a point, persisted verbatim
/// in its checkpoint entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneEvidence {
    /// Label of the simulated basis point the prediction copies.
    pub basis_label: String,
    /// The basis design point's config fingerprint at decision time;
    /// resume and merge refuse to replay the entry if the grid's basis
    /// fingerprint has drifted.
    pub basis_fingerprint: u64,
    /// The swept axis the rule is about.
    pub axis: SweepAxis,
    /// The basis's dominant cycle bucket.
    pub dominant: CycleBucket,
    /// Fraction of the basis's total cycles in the dominant bucket.
    pub dominance: f64,
    /// Fraction of the basis's total cycles in the axis-movable buckets.
    pub movable_fraction: f64,
    /// The policy tolerance the movable fraction was tested against.
    pub tolerance: f64,
}

impl PruneEvidence {
    /// A one-line human rendering of the axis-insensitivity rule.
    pub fn rule(&self) -> String {
        format!(
            "{} cannot move {}-dominated basis '{}' ({:.1}% dominant, movable {:.2}% <= {:.2}%)",
            self.axis.name(),
            self.dominant.name(),
            self.basis_label,
            self.dominance * 100.0,
            self.movable_fraction * 100.0,
            self.tolerance * 100.0,
        )
    }
}

impl ToJson for PruneEvidence {
    fn to_json(&self) -> Json {
        Json::obj([
            ("basis_label", Json::from(self.basis_label.as_str())),
            ("basis_fingerprint", Json::from(self.basis_fingerprint)),
            ("axis", self.axis.to_json()),
            ("dominant", self.dominant.to_json()),
            ("dominance", Json::from(self.dominance)),
            ("movable_fraction", Json::from(self.movable_fraction)),
            ("tolerance", Json::from(self.tolerance)),
        ])
    }
}

impl FromJson for PruneEvidence {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            basis_label: value.field("basis_label")?.as_str()?.to_string(),
            basis_fingerprint: value.field("basis_fingerprint")?.as_u64()?,
            axis: SweepAxis::from_json(value.field("axis")?)?,
            dominant: CycleBucket::from_json(value.field("dominant")?)?,
            dominance: value.field("dominance")?.as_f64()?,
            movable_fraction: value.field("movable_fraction")?.as_f64()?,
            tolerance: value.field("tolerance")?.as_f64()?,
        })
    }
}

impl PrunePolicy {
    /// A policy over `axis` with the default 5% tolerance and no groups.
    pub fn new(axis: SweepAxis, tolerance: f64) -> Self {
        Self {
            axis,
            tolerance,
            groups: Vec::new(),
        }
    }

    /// Adds a group (builder style).
    pub fn group(
        mut self,
        basis: impl Into<String>,
        members: impl IntoIterator<Item = String>,
    ) -> Self {
        self.groups.push(PruneGroup {
            basis: basis.into(),
            members: members.into_iter().collect(),
        });
        self
    }

    /// The group whose member (not basis) set contains `label`.
    pub fn group_of_member(&self, label: &str) -> Option<&PruneGroup> {
        self.groups
            .iter()
            .find(|g| g.members.iter().any(|m| m == label))
    }

    /// Whether `label` is some group's basis.
    pub fn is_basis(&self, label: &str) -> bool {
        self.groups.iter().any(|g| g.basis == label)
    }

    /// Decides whether a member point with basis attribution `attr` may
    /// be skipped. `basis_label`/`basis_fingerprint` identify the grid's
    /// current basis design point and are recorded as evidence.
    pub fn decide(
        &self,
        basis_label: &str,
        basis_fingerprint: u64,
        attr: Option<&CycleAttribution>,
    ) -> PruneDecision {
        let Some(attr) = attr else {
            return PruneDecision::Run(RunReason::NoAttribution);
        };
        let dominant = attr.dominant();
        if self.axis.can_move(dominant) {
            return PruneDecision::Run(RunReason::DominantMovable);
        }
        let movable_fraction = attr.fraction_of(self.axis.movable_buckets());
        if movable_fraction > self.tolerance {
            return PruneDecision::Run(RunReason::MovableAboveTolerance);
        }
        // The axis perturbs more than its movable buckets: removing (or
        // adding) stall cycles shifts how the remaining work overlaps,
        // so even non-movable buckets can drift by up to roughly the
        // movable share. A dominant whose lead over the runner-up is
        // inside that band might not survive the axis — run the point.
        let second = CycleBucket::ALL
            .iter()
            .filter(|&&b| b != dominant)
            .map(|&b| attr.fraction(b))
            .fold(0.0_f64, f64::max);
        if attr.fraction(dominant) - second <= movable_fraction {
            return PruneDecision::Run(RunReason::DominanceFragile);
        }
        PruneDecision::Prune(PruneEvidence {
            basis_label: basis_label.to_string(),
            basis_fingerprint,
            axis: self.axis,
            dominant,
            dominance: attr.fraction(dominant),
            movable_fraction,
            tolerance: self.tolerance,
        })
    }
}

/// Run/prune accounting over a finished sweep, for progress summaries
/// and the `--json` document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneSummary {
    /// Points that were simulated (fresh or served from a run entry).
    pub ran: usize,
    /// Points that were skipped with evidence.
    pub pruned: usize,
}

impl PruneSummary {
    /// Total points the sweep covered.
    pub fn total(&self) -> usize {
        self.ran + self.pruned
    }

    /// Fraction of points skipped; `0.0` for an empty sweep.
    pub fn pruned_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.pruned as f64 / self.total() as f64
        }
    }
}

impl ToJson for PruneSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ran", Json::from(self.ran as u64)),
            ("pruned", Json::from(self.pruned as u64)),
        ])
    }
}

/// Tallies a result slice into a [`PruneSummary`].
pub fn summarize<T>(results: &[SweepResult<T>]) -> PruneSummary {
    let pruned = results.iter().filter(|r| r.pruned.is_some()).count();
    PruneSummary {
        ran: results.len() - pruned,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(compute: u64, tlb: u64, dram: u64) -> CycleAttribution {
        CycleAttribution {
            compute,
            tlb_stall: tlb,
            dram,
            ..CycleAttribution::default()
        }
    }

    fn policy() -> PrunePolicy {
        PrunePolicy::new(SweepAxis::TlbEntries, 0.05)
            .group("basis", ["m1".to_string(), "m2".to_string()])
    }

    #[test]
    fn compute_dominated_point_with_small_tlb_share_prunes() {
        // 90% compute, 3% tlb-stall, 7% dram: a TLB axis cannot move it.
        let d = policy().decide("basis", 42, Some(&attr(900, 30, 70)));
        let PruneDecision::Prune(ev) = d else {
            panic!("expected a prune, got {d:?}");
        };
        assert_eq!(ev.basis_label, "basis");
        assert_eq!(ev.basis_fingerprint, 42);
        assert_eq!(ev.axis, SweepAxis::TlbEntries);
        assert_eq!(ev.dominant, CycleBucket::Compute);
        assert!((ev.dominance - 0.9).abs() < 1e-12);
        assert!((ev.movable_fraction - 0.03).abs() < 1e-12);
        assert!(ev.rule().contains("tlb-entries"));
        assert!(ev.rule().contains("compute"));
        // Evidence survives a JSON round trip exactly.
        assert_eq!(PruneEvidence::from_json(&ev.to_json()).unwrap(), ev);
    }

    #[test]
    fn movable_dominant_or_large_movable_share_runs() {
        // TLB-stall dominated: the axis can move the dominant bucket.
        assert_eq!(
            policy().decide("basis", 0, Some(&attr(10, 900, 90))),
            PruneDecision::Run(RunReason::DominantMovable)
        );
        // Compute dominated but 10% tlb-stall > 5% tolerance.
        assert_eq!(
            policy().decide("basis", 0, Some(&attr(800, 100, 100))),
            PruneDecision::Run(RunReason::MovableAboveTolerance)
        );
        // No attribution at all (functional run): must simulate.
        assert_eq!(
            policy().decide("basis", 0, None),
            PruneDecision::Run(RunReason::NoAttribution)
        );
        // Compute barely ahead of dram (1% lead) with a 3% movable
        // share: the lead is inside the perturbation band.
        assert_eq!(
            policy().decide("basis", 0, Some(&attr(480, 30, 470))),
            PruneDecision::Run(RunReason::DominanceFragile)
        );
    }

    #[test]
    fn group_lookup() {
        let p = policy();
        assert!(p.is_basis("basis"));
        assert!(!p.is_basis("m1"));
        assert_eq!(p.group_of_member("m2").unwrap().basis, "basis");
        assert!(p.group_of_member("basis").is_none());
        assert!(p.group_of_member("unknown").is_none());
    }

    #[test]
    fn summary_accounting() {
        let s = PruneSummary { ran: 8, pruned: 24 };
        assert_eq!(s.total(), 32);
        assert!((s.pruned_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(PruneSummary::default().pruned_fraction(), 0.0);
    }
}
