//! Sweep checkpoint persistence: newline-delimited JSON, one completed
//! point per line.
//!
//! The figure sweeps (Figs. 7–9) are grids of full-SoC simulations; a
//! killed or extended sweep should not pay for points it already
//! finished. This module persists every completed [`SweepResult`] as one
//! JSON line — label, a fingerprint of the design point, wall-clock, and
//! the full payload — flushed as the point completes, so an interrupted
//! sweep loses at most the points that were in flight. On resume the
//! loader keeps the last entry per label, and a point is skipped only
//! when both its label *and* fingerprint match, so edited design points
//! (or a changed payload schema) re-run instead of serving stale data.
//!
//! The same files double as the figure binaries' `--json` output and as
//! the shard inputs for multi-host sweeps: merging N shards is "load N
//! checkpoint files, fold reports through `merge_memory_stats`".
//!
//! File format (version 2), one object per line:
//!
//! ```json
//! {"v":2,"label":"private=4 shared=0","fingerprint":1234,"wall_nanos":512000,"payload":{...},"crc32":987654}
//! ```
//!
//! The trailing `crc32` field is an IEEE CRC-32 of the line's own text
//! with the crc field removed (everything up to the `,"crc32":` suffix,
//! re-closed with `}`), so any byte-level damage — a torn write, a bad
//! sector, a flipped digit that would otherwise still parse — is
//! detected on load. Version-1 lines (no crc) still decode, so files
//! written before the bump resume unchanged; a damaged line is
//! *quarantined* by [`Checkpoint::load_quarantining`] into a `.bad`
//! sidecar next to the file instead of aborting the resume, and the
//! point it named simply re-runs.
//!
//! A point skipped by attribution-guided pruning ([`crate::prune`])
//! persists the same shape plus a `"pruned"` object naming its evidence
//! (basis label + fingerprint, the swept axis, the basis's dominant
//! bucket and movable-cycle fraction, and the tolerance); its payload is
//! the basis's payload served as a prediction and its `wall_nanos` is 0.
//! A point that timed out under `--point-timeout` persists as a
//! [`FailedEntry`]: the same envelope with a `"failed"` reason string
//! and no payload — a first-class record that the point was attempted
//! and must not wedge the sweep again on resume.
//!
//! [`SweepResult`]: crate::sweep::SweepResult

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use gemmini_mem::json::{FromJson, Json, JsonError, ToJson};

use crate::prune::PruneEvidence;

/// Current checkpoint line format version. Version 2 added the trailing
/// per-line `crc32` field and the payload-less failed-entry shape;
/// version-1 lines (no crc) still decode.
pub const FORMAT_VERSION: u64 = 2;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// IEEE CRC-32 lookup table (polynomial `0xEDB88320`, reflected),
/// generated at compile time — no dependency, no runtime init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/zip polynomial) over a byte string — the
/// per-line integrity check behind checkpoint self-healing. Unlike the
/// FNV fingerprint (which hashes a design point's *configuration*), this
/// guards the persisted *bytes*: any single-bit flip in a line changes
/// the CRC.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Closes `body` (a serialized JSON object) with its own CRC appended as
/// the trailing `crc32` field — the inverse of [`strip_crc`].
fn seal_with_crc(body: String) -> String {
    let crc = crc32(body.as_bytes());
    let mut line = body;
    line.pop(); // the closing '}'
    line.push_str(&format!(",\"crc32\":{crc}}}"));
    line
}

/// Recovers the CRC-less body of a sealed line and the recorded CRC.
/// Returns `None` when the line does not end in a `crc32` field.
fn strip_crc(line: &str) -> Option<(String, u32)> {
    const MARKER: &str = ",\"crc32\":";
    let pos = line.rfind(MARKER)?;
    let tail = &line[pos + MARKER.len()..];
    let digits = tail.strip_suffix('}')?;
    let recorded = digits.trim().parse::<u32>().ok()?;
    let mut body = line[..pos].to_string();
    body.push('}');
    Some((body, recorded))
}

/// FNV-1a over a byte string: a small, stable, dependency-free hash for
/// design-point fingerprints (not cryptographic; collision odds over a
/// sweep grid of thousands of points are negligible).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Incremental FNV-1a state fed directly by the formatter, so hashing a
/// `Debug` rendering never materializes it (a full ResNet50 design point
/// renders to megabytes of text).
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// Fingerprints any `Debug`-renderable value. The figure sweeps hash the
/// full `(SocConfig, networks, RunOptions)` debug rendering, so any edit
/// to a design point — a cache size, a layer shape, the seed — changes
/// the fingerprint and forces a re-run on resume.
///
/// The rendering is streamed into the hash state chunk by chunk; the
/// result is identical to `fnv1a(format!("{value:?}").as_bytes())`, so
/// fingerprints in existing checkpoint files stay valid.
pub fn debug_fingerprint<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    let mut hasher = FnvWriter(FNV_OFFSET_BASIS);
    write!(hasher, "{value:?}").expect("FnvWriter::write_str never fails");
    hasher.0
}

/// One persisted sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry<T> {
    /// The design point's label (the lookup key on resume).
    pub label: String,
    /// Fingerprint of the point's full configuration.
    pub fingerprint: u64,
    /// Wall-clock the point took when it actually ran.
    pub wall: Duration,
    /// The point's result payload (a `SocReport` for the figure sweeps).
    /// For a pruned point this is the basis point's payload served as a
    /// prediction.
    pub payload: T,
    /// Prune evidence when the point was skipped rather than simulated;
    /// `None` (and an absent JSON field) for every point that ran.
    pub pruned: Option<PruneEvidence>,
}

/// A point that was *attempted* and failed in a way that must not be
/// silently retried forever — today only `--point-timeout` expirations,
/// persisted with reason `"timeout"`. A failed entry is first-class: it
/// satisfies resume (the point is served as a recorded failure instead
/// of wedging the sweep again) and shard-merge coverage (the grid is
/// complete, just not fully successful). Deleting the line — or running
/// without `--resume` — re-runs the point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedEntry {
    /// The design point's label.
    pub label: String,
    /// Fingerprint of the point's full configuration.
    pub fingerprint: u64,
    /// Wall-clock spent before the failure was recorded.
    pub wall: Duration,
    /// Why the point failed (`"timeout"`).
    pub reason: String,
}

impl FailedEntry {
    /// Encodes the entry as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        seal_with_crc(
            Json::obj([
                ("v", Json::from(FORMAT_VERSION)),
                ("label", Json::from(self.label.clone())),
                ("fingerprint", Json::from(self.fingerprint)),
                ("wall_nanos", Json::from(self.wall.as_nanos() as u64)),
                ("failed", Json::from(self.reason.clone())),
            ])
            .encode(),
        )
    }
}

/// One decoded checkpoint line: a completed (or pruned-predicted) point,
/// or a recorded failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Line<T> {
    /// A point with a persisted payload.
    Completed(CheckpointEntry<T>),
    /// A recorded failure (no payload).
    Failed(FailedEntry),
}

impl<T> Line<T> {
    /// The entry's label, whichever kind it is.
    pub fn label(&self) -> &str {
        match self {
            Self::Completed(e) => &e.label,
            Self::Failed(e) => &e.label,
        }
    }

    /// Encodes the line back to its JSON text.
    pub fn encode(&self) -> String
    where
        T: ToJson,
    {
        match self {
            Self::Completed(e) => e.encode(),
            Self::Failed(e) => e.encode(),
        }
    }
}

/// Decodes one checkpoint line of either kind, verifying the CRC on
/// version-2 lines (version-1 lines have none and are accepted as-is).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON, an unknown format version,
/// a CRC mismatch (byte-level damage), or a payload that no longer
/// matches `T`'s schema.
pub fn decode_line<T: FromJson>(line: &str) -> Result<Line<T>, JsonError> {
    let line = line.trim();
    let value = Json::parse(line)?;
    let version = value.field("v")?.as_u64()?;
    match version {
        1 => {}
        2 => {
            let recorded_field = value.field("crc32")?.as_u64()?;
            let (body, recorded) = strip_crc(line)
                .ok_or_else(|| JsonError::new("version-2 line does not end in a crc32 field"))?;
            let computed = crc32(body.as_bytes());
            if u64::from(recorded) != recorded_field || recorded != computed {
                return Err(JsonError::new(format!(
                    "crc mismatch: line records {recorded}, bytes hash to {computed}"
                )));
            }
        }
        _ => {
            return Err(JsonError::new(format!(
                "unsupported checkpoint version {version} (expected 1..={FORMAT_VERSION})"
            )));
        }
    }
    let label = value.field("label")?.as_str()?.to_string();
    let fingerprint = value.field("fingerprint")?.as_u64()?;
    let wall = Duration::from_nanos(value.field("wall_nanos")?.as_u64()?);
    if let Some(reason) = value.get("failed") {
        return Ok(Line::Failed(FailedEntry {
            label,
            fingerprint,
            wall,
            reason: reason.as_str()?.to_string(),
        }));
    }
    Ok(Line::Completed(CheckpointEntry {
        label,
        fingerprint,
        wall,
        payload: T::from_json(value.field("payload")?)?,
        pruned: value
            .get("pruned")
            .map(PruneEvidence::from_json)
            .transpose()?,
    }))
}

impl<T: ToJson> CheckpointEntry<T> {
    /// Encodes the entry as one JSON line (no trailing newline), sealed
    /// with its CRC as the trailing field.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("v", Json::from(FORMAT_VERSION)),
            ("label", Json::from(self.label.clone())),
            ("fingerprint", Json::from(self.fingerprint)),
            ("wall_nanos", Json::from(self.wall.as_nanos() as u64)),
            ("payload", self.payload.to_json()),
        ];
        if let Some(evidence) = &self.pruned {
            fields.push(("pruned", evidence.to_json()));
        }
        seal_with_crc(Json::obj(fields).encode())
    }
}

impl<T: FromJson> CheckpointEntry<T> {
    /// Decodes one *completed* checkpoint line (see [`decode_line`] for
    /// the kind-aware decoder).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, an unknown format
    /// version, a CRC mismatch, a failed-entry line, or a payload that
    /// no longer matches `T`'s schema.
    pub fn decode(line: &str) -> Result<Self, JsonError> {
        match decode_line(line)? {
            Line::Completed(entry) => Ok(entry),
            Line::Failed(e) => Err(JsonError::new(format!(
                "line records a failure ({}) and has no payload",
                e.reason
            ))),
        }
    }
}

/// An in-memory view of a checkpoint file, ready for resume lookups.
#[derive(Debug, Clone)]
pub struct Checkpoint<T> {
    entries: Vec<CheckpointEntry<T>>,
    failed: Vec<FailedEntry>,
    /// Lines that failed to decode (truncated in-flight write at kill
    /// time, byte-level damage caught by the CRC, or a schema change);
    /// the points they named simply re-run.
    pub stale_lines: usize,
}

impl<T> Default for Checkpoint<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            failed: Vec::new(),
            stale_lines: 0,
        }
    }
}

/// What [`Checkpoint::load_quarantining`] removed from a damaged file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Number of undecodable lines moved to the sidecar.
    pub lines: usize,
    /// The `.bad` sidecar the damaged lines were appended to; `None`
    /// when the file was clean.
    pub sidecar: Option<PathBuf>,
}

impl<T: FromJson> Checkpoint<T> {
    /// Loads a checkpoint file. A missing file is an empty checkpoint;
    /// undecodable lines are counted in `stale_lines` and skipped (their
    /// points re-run — the safe direction). When a label appears more
    /// than once (a re-run appended over a stale entry), the last
    /// occurrence wins.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for anything other than a
    /// missing file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match read_lossy(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut checkpoint = Self::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match decode_line(line) {
                Ok(Line::Completed(entry)) => checkpoint.entries.push(entry),
                Ok(Line::Failed(entry)) => checkpoint.failed.push(entry),
                Err(_) => checkpoint.stale_lines += 1,
            }
        }
        Ok(checkpoint)
    }

    /// Loads a checkpoint file, *quarantining* undecodable lines instead
    /// of merely skipping them: every damaged line is appended to a
    /// `<file>.bad` sidecar next to the checkpoint and the checkpoint is
    /// atomically rewritten without them, so a damaged line is reported
    /// exactly once across resume cycles and the file converges back to
    /// fully valid. The returned checkpoint has `stale_lines == 0`; the
    /// damage is reported through [`Quarantine`] instead.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from reading the file, writing
    /// the sidecar, or rewriting the checkpoint.
    pub fn load_quarantining(path: &Path) -> io::Result<(Self, Quarantine)> {
        let text = match read_lossy(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Self::default(), Quarantine::default()))
            }
            Err(e) => return Err(e),
        };
        let mut checkpoint = Self::default();
        let mut good: Vec<&str> = Vec::new();
        let mut bad: Vec<&str> = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match decode_line(line) {
                Ok(Line::Completed(entry)) => {
                    checkpoint.entries.push(entry);
                    good.push(line);
                }
                Ok(Line::Failed(entry)) => {
                    checkpoint.failed.push(entry);
                    good.push(line);
                }
                Err(_) => bad.push(line),
            }
        }
        if bad.is_empty() {
            return Ok((checkpoint, Quarantine::default()));
        }

        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("checkpoint.jsonl");
        let sidecar = path.with_file_name(format!("{file_name}.bad"));
        {
            let mut out = BufWriter::new(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&sidecar)?,
            );
            for line in &bad {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
        }
        // Rewrite the checkpoint without the damaged lines (temp file +
        // atomic rename, same discipline as `compact`), so the next load
        // does not quarantine them again.
        let tmp: PathBuf =
            path.with_file_name(format!(".{file_name}.quarantine-{}", std::process::id()));
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            for line in &good {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        eprintln!(
            "checkpoint: quarantined {} damaged line(s) from {} to {}",
            bad.len(),
            path.display(),
            sidecar.display()
        );
        Ok((
            checkpoint,
            Quarantine {
                lines: bad.len(),
                sidecar: Some(sidecar),
            },
        ))
    }
}

/// Reads a checkpoint file as text, substituting U+FFFD for any invalid
/// UTF-8 byte sequence. Byte-level corruption must surface as
/// undecodable *lines* (skippable or quarantinable) rather than an I/O
/// error that aborts the whole load — a CRC-sealed line never contains a
/// replacement character, so intact lines are unaffected.
fn read_lossy(path: &Path) -> io::Result<String> {
    std::fs::read(path).map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

impl<T> Checkpoint<T> {
    /// The completed entry for `label`, if present with a matching
    /// fingerprint (later entries shadow earlier ones).
    pub fn lookup(&self, label: &str, fingerprint: u64) -> Option<&CheckpointEntry<T>> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.label == label)
            .filter(|e| e.fingerprint == fingerprint)
    }

    /// Removes and returns the entry [`lookup`](Self::lookup) would have
    /// found, handing the payload over without a clone.
    pub fn take(&mut self, label: &str, fingerprint: u64) -> Option<CheckpointEntry<T>> {
        let idx = self.entries.iter().rposition(|e| e.label == label)?;
        if self.entries[idx].fingerprint == fingerprint {
            Some(self.entries.remove(idx))
        } else {
            None
        }
    }

    /// Number of decoded entries (including shadowed duplicates).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint holds no decoded entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All decoded entries, in file order.
    pub fn entries(&self) -> &[CheckpointEntry<T>] {
        &self.entries
    }

    /// The recorded failure for `label`, if present with a matching
    /// fingerprint (later entries shadow earlier ones).
    pub fn lookup_failed(&self, label: &str, fingerprint: u64) -> Option<&FailedEntry> {
        self.failed
            .iter()
            .rev()
            .find(|e| e.label == label)
            .filter(|e| e.fingerprint == fingerprint)
    }

    /// Removes and returns the failure
    /// [`lookup_failed`](Self::lookup_failed) would have found.
    ///
    /// A point that both failed *and* later completed (a successful
    /// retry appended after a recorded timeout) is served from
    /// [`take`](Self::take) — callers must try that first, which is why
    /// this lookup ignores the completed entries.
    pub fn take_failed(&mut self, label: &str, fingerprint: u64) -> Option<FailedEntry> {
        let idx = self.failed.iter().rposition(|e| e.label == label)?;
        if self.failed[idx].fingerprint == fingerprint {
            Some(self.failed.remove(idx))
        } else {
            None
        }
    }

    /// All recorded failures, in file order.
    pub fn failed(&self) -> &[FailedEntry] {
        &self.failed
    }

    /// Appends another checkpoint's entries after this one's — the
    /// multi-shard combine: the result behaves as if `other`'s file had
    /// been concatenated onto ours, so on label conflicts the absorbed
    /// entries win (they are later).
    pub fn absorb(&mut self, other: Checkpoint<T>) {
        self.entries.extend(other.entries);
        self.failed.extend(other.failed);
        self.stale_lines += other.stale_lines;
    }
}

/// Outcome of a [`compact`] pass over a checkpoint file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Compaction {
    /// Lines kept: the last occurrence of every label, plus any
    /// undecodable lines left for the quarantining loader.
    pub kept: usize,
    /// Lines reclaimed: shadowed re-runs.
    pub dropped: usize,
}

/// Rewrites a checkpoint file keeping only the last line per label,
/// dropping shadowed re-run entries. Repeated resume cycles append
/// re-run entries over stale ones, so without this the file grows
/// without bound; the sweep executor compacts on every successful
/// resumed completion.
///
/// Lines with no parseable `label` — torn or corrupted fragments — are
/// *kept*, not reclaimed: damage must surface exactly once through
/// [`Checkpoint::load_quarantining`] (message, `.bad` sidecar, and a
/// re-run of the lost point), never be silently swallowed by a
/// maintenance pass.
///
/// Works at the JSON-line level (only the `label` field is inspected, so
/// the payload schema is irrelevant), writes survivors to a temporary
/// file in the same directory and atomically renames it over the
/// original — a crash mid-compaction never loses the checkpoint. When
/// nothing would be dropped the file is left untouched. A missing file
/// compacts to nothing.
///
/// # Errors
///
/// Returns the underlying I/O error from reading, writing the temporary
/// file, or the rename.
pub fn compact(path: &Path) -> io::Result<Compaction> {
    let text = match read_lossy(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Compaction::default()),
        Err(e) => return Err(e),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut last_for_label: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut unlabeled: Vec<usize> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let label = Json::parse(line).ok().and_then(|v| {
            v.field("label")
                .ok()
                .and_then(|l| l.as_str().ok().map(String::from))
        });
        match label {
            Some(label) => {
                last_for_label.insert(label, idx);
            }
            None => unlabeled.push(idx),
        }
    }
    let mut keep: std::collections::HashSet<usize> = last_for_label.into_values().collect();
    keep.extend(unlabeled);
    let kept = keep.len();
    let dropped = lines.len() - kept;
    if dropped == 0 {
        return Ok(Compaction { kept, dropped });
    }

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint.jsonl");
    let tmp: PathBuf = path.with_file_name(format!(".{file_name}.compact-{}", std::process::id()));
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        for (idx, line) in lines.iter().enumerate() {
            if keep.contains(&idx) {
                writeln!(out, "{line}")?;
            }
        }
        out.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(Compaction { kept, dropped })
}

/// An append-only, line-buffered checkpoint writer shared across sweep
/// workers. Every [`append`](Self::append) writes one full line and
/// flushes, so a kill between points loses nothing already completed.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: Mutex<BufWriter<File>>,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint file, making parent directories
    /// as needed — the fresh-sweep mode.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::open(path, false)
    }

    /// Opens a checkpoint file for appending (creating it if missing) —
    /// the resume mode.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        Self::open(path, true)
    }

    fn open(path: &Path, append: bool) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(path)?;
        Ok(Self {
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one entry as a flushed JSON line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if a previous writer thread panicked while holding the
    /// file lock (the sweep executor catches per-point panics before
    /// they can reach the writer, so this is unreachable in practice).
    pub fn append<T: ToJson>(&self, entry: &CheckpointEntry<T>) -> io::Result<()> {
        self.append_line(entry.encode())
    }

    /// Appends one recorded failure as a flushed JSON line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_failed(&self, entry: &FailedEntry) -> io::Result<()> {
        self.append_line(entry.encode())
    }

    /// The shared append path, carrying the two checkpoint failpoints:
    /// `checkpoint.flush` (fail the write with an injected I/O error)
    /// and `checkpoint.corrupt` (truncate the encoded line to two thirds
    /// before writing — a torn write the CRC must catch on load).
    fn append_line(&self, mut line: String) -> io::Result<()> {
        if let Some(e) = crate::fault::fail_io("checkpoint.flush") {
            return Err(e);
        }
        if crate::fault::fire("checkpoint.corrupt") == Some(crate::fault::FaultAction::Corrupt) {
            line.truncate(line.len() * 2 / 3);
        }
        let mut file = self.file.lock().expect("checkpoint writer lock");
        writeln!(file, "{line}")?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, fingerprint: u64, payload: u64) -> CheckpointEntry<u64> {
        CheckpointEntry {
            label: label.to_string(),
            fingerprint,
            wall: Duration::from_micros(payload),
            payload,
            pruned: None,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gemmini_ckpt_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn entry_round_trips() {
        let e = entry("private=4 shared=0", 0xDEAD_BEEF, 42);
        let line = e.encode();
        assert!(!line.contains('\n'), "entries must be single lines");
        assert_eq!(CheckpointEntry::<u64>::decode(&line).unwrap(), e);
    }

    #[test]
    fn pruned_entry_round_trips_and_plain_lines_stay_plain() {
        use gemmini_mem::stats::{CycleBucket, SweepAxis};
        // A run entry encodes without a "pruned" field, so pre-prune
        // version-1 files and fresh run lines are byte-compatible.
        let plain = entry("p", 7, 9);
        assert!(!plain.encode().contains("pruned"));
        let pruned = CheckpointEntry {
            pruned: Some(PruneEvidence {
                basis_label: "p".to_string(),
                basis_fingerprint: 7,
                axis: SweepAxis::TlbEntries,
                dominant: CycleBucket::Compute,
                dominance: 0.8,
                movable_fraction: 0.03,
                tolerance: 0.05,
            }),
            ..entry("q", 8, 9)
        };
        let line = pruned.encode();
        assert!(line.contains("\"pruned\""));
        assert_eq!(CheckpointEntry::<u64>::decode(&line).unwrap(), pruned);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let line = r#"{"v":99,"label":"x","fingerprint":1,"wall_nanos":0,"payload":0}"#;
        assert!(CheckpointEntry::<u64>::decode(line).is_err());
    }

    #[test]
    fn version_1_lines_without_crc_still_decode() {
        let line = r#"{"v":1,"label":"legacy","fingerprint":7,"wall_nanos":100,"payload":9}"#;
        let e = CheckpointEntry::<u64>::decode(line).unwrap();
        assert_eq!(e.label, "legacy");
        assert_eq!(e.payload, 9);
    }

    #[test]
    fn crc_detects_a_flipped_byte() {
        let line = entry("x", 1, 42).encode();
        assert!(line.contains("\"crc32\":"), "v2 lines carry a crc field");
        // Flip one payload digit: still syntactically valid JSON, but
        // the recorded CRC no longer matches the bytes.
        let damaged = line.replace("\"payload\":42", "\"payload\":43");
        assert_ne!(line, damaged);
        assert!(Json::parse(&damaged).is_ok(), "damage is JSON-invisible");
        assert!(CheckpointEntry::<u64>::decode(&damaged).is_err());
        // The undamaged line still decodes.
        assert!(CheckpointEntry::<u64>::decode(&line).is_ok());
    }

    #[test]
    fn failed_entry_round_trips() {
        let f = FailedEntry {
            label: "slow point".to_string(),
            fingerprint: 0xABCD,
            wall: Duration::from_secs(30),
            reason: "timeout".to_string(),
        };
        let line = f.encode();
        match decode_line::<u64>(&line).unwrap() {
            Line::Failed(back) => assert_eq!(back, f),
            Line::Completed(_) => panic!("failed entry decoded as completed"),
        }
        // The strict completed-only decoder rejects it.
        assert!(CheckpointEntry::<u64>::decode(&line).is_err());
    }

    #[test]
    fn load_collects_failed_entries_separately() {
        let path = temp_path("load_failed");
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("ok", 1, 10)).unwrap();
        writer
            .append_failed(&FailedEntry {
                label: "bad".to_string(),
                fingerprint: 2,
                wall: Duration::from_secs(5),
                reason: "timeout".to_string(),
            })
            .unwrap();
        drop(writer);
        let mut ckpt = Checkpoint::<u64>::load(&path).unwrap();
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.failed().len(), 1);
        assert!(ckpt.lookup_failed("bad", 2).is_some());
        assert!(ckpt.lookup_failed("bad", 999).is_none(), "fingerprint gate");
        assert_eq!(ckpt.take_failed("bad", 2).unwrap().reason, "timeout");
        assert!(ckpt.take_failed("bad", 2).is_none(), "taken exactly once");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_moves_damaged_lines_to_sidecar_exactly_once() {
        let path = temp_path("quarantine");
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("a", 1, 10)).unwrap();
        writer.append(&entry("b", 2, 20)).unwrap();
        writer.append(&entry("c", 3, 30)).unwrap();
        drop(writer);
        // Damage the middle line: flip a digit under the CRC.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let damaged = lines[1].replace("\"payload\":20", "\"payload\":21");
        std::fs::write(&path, format!("{}\n{damaged}\n{}\n", lines[0], lines[2])).unwrap();

        let (ckpt, q) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.stale_lines, 0);
        assert!(ckpt.lookup("b", 2).is_none(), "damaged point re-runs");
        assert_eq!(q.lines, 1);
        let sidecar = q.sidecar.unwrap();
        let bad = std::fs::read_to_string(&sidecar).unwrap();
        assert_eq!(bad.lines().count(), 1);
        assert_eq!(bad.lines().next().unwrap(), damaged);

        // Second load: the file was rewritten clean, nothing new to
        // quarantine, the sidecar is untouched.
        let (ckpt2, q2) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        assert_eq!(ckpt2.len(), 2);
        assert_eq!(q2, Quarantine::default());
        assert_eq!(std::fs::read_to_string(&sidecar).unwrap(), bad);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
    }

    #[test]
    fn quarantine_of_missing_or_clean_file_is_a_noop() {
        let (ckpt, q) =
            Checkpoint::<u64>::load_quarantining(&temp_path("quarantine_missing")).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(q, Quarantine::default());

        let path = temp_path("quarantine_clean");
        CheckpointWriter::create(&path)
            .unwrap()
            .append(&entry("a", 1, 10))
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let (ckpt, q) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        assert_eq!(ckpt.len(), 1);
        assert_eq!(q, Quarantine::default());
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "clean file untouched");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_load_lookup() {
        let path = temp_path("write_load");
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("a", 1, 10)).unwrap();
        writer.append(&entry("b", 2, 20)).unwrap();
        drop(writer);

        let ckpt = Checkpoint::<u64>::load(&path).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.lookup("a", 1).unwrap().payload, 10);
        // Fingerprint mismatch means the point config changed: no hit.
        assert!(ckpt.lookup("a", 999).is_none());
        assert!(ckpt.lookup("missing", 1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_stale_not_fatal() {
        let path = temp_path("truncated");
        let full = entry("done", 7, 70).encode();
        let partial = &full[..full.len() / 2];
        std::fs::write(&path, format!("{full}\n{partial}")).unwrap();

        let ckpt = Checkpoint::<u64>::load(&path).unwrap();
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.stale_lines, 1);
        assert_eq!(ckpt.lookup("done", 7).unwrap().payload, 70);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let ckpt = Checkpoint::<u64>::load(&temp_path("never_written")).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.stale_lines, 0);
    }

    #[test]
    fn later_entries_shadow_earlier_ones() {
        let path = temp_path("shadow");
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("p", 1, 10)).unwrap();
        writer.append(&entry("p", 2, 20)).unwrap();
        drop(writer);
        let ckpt = Checkpoint::<u64>::load(&path).unwrap();
        // The re-run (new fingerprint) wins; the stale one no longer hits.
        assert_eq!(ckpt.lookup("p", 2).unwrap().payload, 20);
        assert!(ckpt.lookup("p", 1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_mode_preserves_existing_entries() {
        let path = temp_path("append");
        CheckpointWriter::create(&path)
            .unwrap()
            .append(&entry("a", 1, 10))
            .unwrap();
        CheckpointWriter::append_to(&path)
            .unwrap()
            .append(&entry("b", 2, 20))
            .unwrap();
        let ckpt = Checkpoint::<u64>::load(&path).unwrap();
        assert_eq!(ckpt.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(
            debug_fingerprint(&(1u32, 2u32)),
            debug_fingerprint(&(2u32, 1u32))
        );
        assert_eq!(debug_fingerprint(&"x"), debug_fingerprint(&"x"));
    }

    #[test]
    fn streaming_fingerprint_matches_materialized_rendering() {
        // The streaming hasher must produce byte-for-byte the same hash
        // as hashing the fully formatted Debug string, or every existing
        // checkpoint fingerprint would be invalidated.
        let values: Vec<Box<dyn std::fmt::Debug>> = vec![
            Box::new("plain string with \"escapes\" and \n newlines"),
            Box::new((1u8, -2i64, 3.5f64, vec![1u32, 2, 3])),
            Box::new(Some(vec![(String::from("nested"), [0u8; 33])])),
            Box::new(Duration::from_nanos(123_456_789)),
        ];
        for v in &values {
            assert_eq!(
                debug_fingerprint(v.as_ref()),
                fnv1a(format!("{v:?}").as_bytes()),
                "streaming hash diverged for {v:?}"
            );
        }
    }

    #[test]
    fn compact_keeps_last_entry_per_label_and_preserves_damage() {
        let path = temp_path("compact");
        let stale = entry("b", 1, 11).encode();
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("a", 1, 10)).unwrap();
        writer.append(&entry("b", 1, 11)).unwrap();
        writer.append(&entry("a", 2, 12)).unwrap(); // re-run shadows a@1
        writer.append(&entry("c", 1, 13)).unwrap();
        drop(writer);
        // Simulate a kill mid-append: a trailing partial line. Compaction
        // must reclaim only the shadowed entry — the torn fragment is the
        // quarantining loader's to report, never compaction's to swallow.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&stale[..stale.len() / 2]);
        std::fs::write(&path, text).unwrap();

        let result = compact(&path).unwrap();
        assert_eq!(
            result,
            Compaction {
                kept: 4,
                dropped: 1
            }
        );

        let ckpt = Checkpoint::<u64>::load(&path).unwrap();
        assert_eq!(ckpt.len(), 3);
        assert_eq!(ckpt.stale_lines, 1, "the fragment survives compaction");
        assert_eq!(ckpt.lookup("a", 2).unwrap().payload, 12);
        assert!(ckpt.lookup("a", 1).is_none(), "shadowed entry reclaimed");
        assert_eq!(ckpt.lookup("b", 1).unwrap().payload, 11);
        assert_eq!(ckpt.lookup("c", 1).unwrap().payload, 13);

        // The quarantining load then moves the fragment to the sidecar.
        let (_, quarantine) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        assert_eq!(quarantine.lines, 1);
        let sidecar = quarantine.sidecar.expect("sidecar written");
        std::fs::remove_file(&sidecar).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_leaves_clean_files_untouched() {
        let path = temp_path("compact_noop");
        let writer = CheckpointWriter::create(&path).unwrap();
        writer.append(&entry("a", 1, 10)).unwrap();
        writer.append(&entry("b", 2, 20)).unwrap();
        drop(writer);
        let before = std::fs::metadata(&path).unwrap().modified().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            compact(&path).unwrap(),
            Compaction {
                kept: 2,
                dropped: 0
            }
        );
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            before
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_missing_file_is_empty() {
        assert_eq!(
            compact(&temp_path("compact_missing")).unwrap(),
            Compaction::default()
        );
    }
}
