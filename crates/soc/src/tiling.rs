//! Loop-tile-size calculation — the Section III-B data-staging heuristic.
//!
//! > "At runtime, based on the dimensions of a layer's inputs, and the
//! > hardware parameters of the accelerator instantiation, Gemmini uses
//! > heuristics to maximize the amount of data moved into the scratchpad
//! > per iteration."
//!
//! Tile sizes are expressed in `dim × dim` blocks. A tile of
//! `(tm, tk, tn)` blocks keeps an A tile (`tm·tk` blocks) and a B tile
//! (`tk·tn` blocks) resident in the scratchpad — double-buffered, so two of
//! each fit — and a C tile (`tm·tn` blocks) in the accumulator.

use gemmini_core::config::GemminiConfig;

/// A tile shape, in units of `dim × dim` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Output-row blocks per tile.
    pub tm: usize,
    /// Reduction blocks per tile.
    pub tk: usize,
    /// Output-column blocks per tile.
    pub tn: usize,
}

impl TilePlan {
    /// Scratchpad rows one buffer of this tile occupies (A + B tiles).
    pub fn sp_rows(&self, dim: usize) -> usize {
        (self.tm * self.tk + self.tk * self.tn) * dim
    }

    /// Accumulator rows the C tile occupies.
    pub fn acc_rows(&self, dim: usize) -> usize {
        self.tm * self.tn * dim
    }

    /// Whether this plan fits the configuration with double-buffered
    /// scratchpad tiles.
    pub fn fits(&self, config: &GemminiConfig) -> bool {
        let dim = config.dim();
        2 * self.sp_rows(dim) <= config.sp_rows() && self.acc_rows(dim) <= config.acc_rows()
    }
}

/// Number of `dim`-blocks covering `len` elements.
pub fn blocks(len: usize, dim: usize) -> usize {
    len.div_ceil(dim)
}

/// Computes tile sizes for an `m × k × n` matrix multiplication on
/// `config`, growing each tile dimension round-robin while the working set
/// still fits (the generator's heuristic). Never exceeds the problem's own
/// block counts.
///
/// # Example
///
/// ```
/// use gemmini_soc::tiling::plan_matmul;
/// use gemmini_core::config::GemminiConfig;
/// let cfg = GemminiConfig::edge();
/// let plan = plan_matmul(&cfg, 3136, 576, 64);
/// assert!(plan.fits(&cfg));
/// assert!(plan.tm >= 1 && plan.tk >= 1 && plan.tn >= 1);
/// ```
pub fn plan_matmul(config: &GemminiConfig, m: usize, k: usize, n: usize) -> TilePlan {
    let dim = config.dim();
    let (mb, kb, nb) = (blocks(m, dim), blocks(k, dim), blocks(n, dim));
    let mut plan = TilePlan {
        tm: 1,
        tk: 1,
        tn: 1,
    };
    assert!(
        plan.fits(config),
        "configuration cannot hold even a single {dim}x{dim} tile"
    );
    loop {
        let mut grew = false;
        // Growth order k → m → n: deepening the reduction dimension first
        // maximizes accumulator reuse per loaded byte.
        for (field, limit) in [(2usize, kb), (0, mb), (1, nb)] {
            let mut candidate = plan;
            match field {
                2 => candidate.tk += 1,
                0 => candidate.tm += 1,
                _ => candidate.tn += 1,
            }
            let current = match field {
                2 => plan.tk,
                0 => plan.tm,
                _ => plan.tn,
            };
            if current < limit && candidate.fits(config) {
                plan = candidate;
                grew = true;
            }
        }
        if !grew {
            return plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> GemminiConfig {
        GemminiConfig::edge()
    }

    #[test]
    fn plan_always_fits() {
        let cfg = edge();
        for (m, k, n) in [
            (16, 16, 16),
            (3136, 576, 64),
            (12544, 147, 64),
            (1, 2048, 1000),
            (128, 768, 3072),
            (100000, 9, 1),
        ] {
            let p = plan_matmul(&cfg, m, k, n);
            assert!(p.fits(&cfg), "({m},{k},{n}) -> {p:?}");
        }
    }

    #[test]
    fn plan_never_exceeds_problem_size() {
        let cfg = edge();
        let p = plan_matmul(&cfg, 16, 16, 16);
        assert_eq!((p.tm, p.tk, p.tn), (1, 1, 1));
        let p = plan_matmul(&cfg, 32, 16, 4096);
        assert!(p.tm <= 2);
        assert!(p.tk <= 1);
    }

    #[test]
    fn bigger_scratchpad_gives_bigger_tiles() {
        let small = edge();
        let big = GemminiConfig {
            sp_capacity_kb: 512,
            acc_capacity_kb: 512,
            ..edge()
        };
        let ps = plan_matmul(&small, 4096, 4096, 4096);
        let pb = plan_matmul(&big, 4096, 4096, 4096);
        let vol = |p: &TilePlan| p.tm * p.tk + p.tk * p.tn;
        assert!(
            vol(&pb) > vol(&ps),
            "BigSP tiles {pb:?} should exceed Base tiles {ps:?}"
        );
    }

    #[test]
    fn reduction_dimension_is_preferred() {
        // For a deep problem the heuristic should grow tk generously.
        let p = plan_matmul(&edge(), 4096, 4096, 4096);
        assert!(p.tk >= p.tn);
    }

    #[test]
    fn manual_plan_fits_check() {
        let cfg = edge();
        // 256 KiB sp, 16-byte rows -> 16384 rows; double-buffered tiles
        // of (tm*tk + tk*tn)*16 rows each.
        let ok = TilePlan {
            tm: 8,
            tk: 8,
            tn: 8,
        };
        assert!(ok.fits(&cfg));
        let too_big = TilePlan {
            tm: 64,
            tk: 64,
            tn: 64,
        };
        assert!(!too_big.fits(&cfg));
    }

    #[test]
    fn blocks_rounds_up() {
        assert_eq!(blocks(16, 16), 1);
        assert_eq!(blocks(17, 16), 2);
        assert_eq!(blocks(1, 16), 1);
    }

    #[test]
    fn acc_constraint_binds() {
        // Tiny accumulator forces small tm*tn even with a huge scratchpad.
        let cfg = GemminiConfig {
            acc_capacity_kb: 4, // 64 acc rows -> tm*tn <= 4
            ..edge()
        };
        let p = plan_matmul(&cfg, 4096, 4096, 4096);
        assert!(p.tm * p.tn <= 4);
    }
}
