//! Integration tests for the parallel design-space sweep executor:
//! scheduling must never change results (bit-identical reports between
//! serial and parallel execution), one point's failure must never take
//! down the sweep, and worker overlap must actually happen.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_soc::checkpoint::Checkpoint;
use gemmini_soc::run::{run_networks, RunOptions, SocReport};
use gemmini_soc::sweep::{
    merge_memory_stats, run_sweep_with, sweep_map, sweep_map_checkpointed, DesignPoint, SweepError,
    SweepOptions,
};
use gemmini_soc::SocConfig;
use gemmini_vm::tlb::TlbConfig;

fn small_net(m: usize, k: usize, n: usize) -> Network {
    let mut net = Network::new(format!("mm_{m}x{k}x{n}"));
    net.push(
        "fc1",
        Layer::Matmul {
            m,
            k,
            n,
            activation: Activation::Relu,
        },
    );
    net.push(
        "fc2",
        Layer::Matmul {
            m,
            k: n,
            n: 8,
            activation: Activation::None,
        },
    );
    net
}

/// An 8-point sweep shaped like the figure sweeps: varying network
/// dimensions and private-TLB sizes on the edge SoC.
fn eight_points() -> Vec<DesignPoint> {
    let dims = [(16, 32, 16), (24, 16, 8), (8, 48, 24), (32, 32, 32)];
    let tlbs = [4u32, 16];
    let mut points = Vec::new();
    for &(m, k, n) in &dims {
        for &entries in &tlbs {
            let mut cfg = SocConfig::edge_single_core();
            cfg.cores[0].translation.private = TlbConfig::private(entries);
            points.push(DesignPoint::new(
                format!("mm {m}x{k}x{n} tlb={entries}"),
                cfg,
                vec![small_net(m, k, n)],
                RunOptions::timing(),
            ));
        }
    }
    points
}

fn opts(threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        progress: false,
        ..SweepOptions::default()
    }
}

fn assert_reports_identical(a: &SocReport, b: &SocReport) {
    assert_eq!(a.cores.len(), b.cores.len());
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(
            ca.total_cycles, cb.total_cycles,
            "cycles must not depend on scheduling"
        );
        assert_eq!(ca.macs, cb.macs);
        assert_eq!(ca.translation.requests, cb.translation.requests);
        assert_eq!(ca.translation.walks, cb.translation.walks);
        assert_eq!(ca.translation.filter_hits, cb.translation.filter_hits);
        let la: Vec<_> = ca.layers.iter().map(|l| (&l.name, l.cycles)).collect();
        let lb: Vec<_> = cb.layers.iter().map(|l| (&l.name, l.cycles)).collect();
        assert_eq!(la, lb);
    }
    assert_eq!(a.l2_stats, b.l2_stats, "L2 counters must be bit-identical");
    assert_eq!(
        a.dram_traffic, b.dram_traffic,
        "DRAM counters must be bit-identical"
    );
    assert_eq!(a.dram_bytes, b.dram_bytes);
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_sweep_with(eight_points(), opts(1));
    let parallel = run_sweep_with(eight_points(), opts(4));
    assert_eq!(serial.len(), 8);
    assert_eq!(parallel.len(), 8);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "results must keep submission order");
        assert_reports_identical(s.expect_ok(), p.expect_ok());
    }
    // The exact cross-point rollup is scheduling-independent too.
    let rs = merge_memory_stats(serial.iter().filter_map(|r| r.ok()));
    let rp = merge_memory_stats(parallel.iter().filter_map(|r| r.ok()));
    assert_eq!(rs.l2, rp.l2);
    assert_eq!(rs.dram, rp.dram);
    assert_eq!(rs.reports, 8);
}

#[test]
fn panicking_point_is_an_err_entry_and_others_complete() {
    let mut points = eight_points();
    // run_networks panics when the network count does not match the
    // core count — a realistic misconfigured design point.
    points[3] = DesignPoint::new(
        "misconfigured",
        SocConfig::edge_single_core(),
        vec![small_net(8, 8, 8), small_net(8, 8, 8)],
        RunOptions::timing(),
    );
    let results = run_sweep_with(points, opts(4));
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        if i == 3 {
            assert_eq!(r.label, "misconfigured");
            match &r.outcome {
                Err(SweepError::Panicked(msg)) => {
                    assert!(
                        msg.contains("one network per core"),
                        "panic message should survive: {msg}"
                    );
                }
                other => panic!("expected panicked entry, got {other:?}"),
            }
        } else {
            assert!(
                r.outcome.is_ok(),
                "point {} must complete despite the failure: {:?}",
                r.label,
                r.outcome
            );
        }
    }
}

#[test]
fn workers_overlap_waiting_points() {
    // Sleep-based tasks prove the pool genuinely overlaps work even on
    // a single-CPU host (sleeps need no core to overlap): 8 x 50 ms
    // serially is 400 ms, but four workers finish in ~100 ms.
    let items: Vec<(String, u64)> = (0..8).map(|i| (format!("p{i}"), i)).collect();
    let start = Instant::now();
    let results = sweep_map(items, opts(4), |i| {
        std::thread::sleep(Duration::from_millis(50));
        Ok(i)
    });
    let wall = start.elapsed();
    assert_eq!(results.len(), 8);
    assert!(
        wall < Duration::from_millis(300),
        "4 workers over 8 x 50ms points must beat 300ms, took {wall:?}"
    );
}

#[test]
fn serial_mode_runs_on_caller_thread() {
    // threads=1 must not spawn: the closure observes the caller's
    // thread id for every point.
    let caller = std::thread::current().id();
    let items: Vec<(String, ())> = (0..4).map(|i| (format!("p{i}"), ())).collect();
    let results = sweep_map(items, opts(1), |_| {
        assert_eq!(std::thread::current().id(), caller);
        Ok(())
    });
    assert!(results.iter().all(|r| r.outcome.is_ok()));
}

/// A scratch checkpoint path unique to this test and process.
fn scratch_checkpoint(test: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gemmini_ckpt_{test}_{}.jsonl", std::process::id()))
}

/// Runs `points` through the checkpointed executor with an execution
/// counter on the side, so tests can assert exactly which points ran
/// versus were served from the checkpoint file.
fn run_counted(
    points: Vec<DesignPoint>,
    options: SweepOptions,
    executed: &AtomicUsize,
) -> Vec<gemmini_soc::sweep::SweepResult<SocReport>> {
    let items = points
        .into_iter()
        .map(|p| (p.label.clone(), p.fingerprint(), p))
        .collect();
    sweep_map_checkpointed(items, options, |p| {
        executed.fetch_add(1, Ordering::SeqCst);
        run_networks(&p.config, &p.networks, &p.options)
    })
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let path = scratch_checkpoint("resume");
    let _ = std::fs::remove_file(&path);

    // The ground truth: the same eight points, uninterrupted, serial.
    let reference = run_sweep_with(eight_points(), opts(1));

    // First attempt: point 4 is misconfigured and dies mid-sweep. The
    // executor isolates the panic, so the other seven points complete
    // and are flushed to the checkpoint; the failed point leaves no
    // entry (exactly as if the process had been killed while running it).
    let mut points = eight_points();
    points[4] = DesignPoint::new(
        points[4].label.clone(),
        SocConfig::edge_single_core(),
        vec![small_net(8, 8, 8), small_net(8, 8, 8)], // panics: 2 nets, 1 core
        RunOptions::timing(),
    );
    let executed = AtomicUsize::new(0);
    let first = run_counted(
        points,
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            ..opts(2)
        },
        &executed,
    );
    assert_eq!(executed.load(Ordering::SeqCst), 8, "fresh run executes all");
    assert!(matches!(first[4].outcome, Err(SweepError::Panicked(_))));

    // The checkpoint holds exactly the seven completed points.
    let on_disk: Checkpoint<SocReport> = Checkpoint::load(&path).expect("checkpoint loads");
    assert_eq!(on_disk.len(), 7, "only completed points are persisted");
    assert_eq!(on_disk.stale_lines, 0);

    // Resume with the corrected sweep: only the missing point runs, the
    // other seven are served from the file, and the stitched results are
    // bit-identical to the uninterrupted reference in submission order.
    let executed = AtomicUsize::new(0);
    let resumed = run_counted(
        eight_points(),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..opts(2)
        },
        &executed,
    );
    assert_eq!(
        executed.load(Ordering::SeqCst),
        1,
        "resume must re-run only the point missing from the checkpoint"
    );
    assert_eq!(resumed.len(), 8);
    assert_eq!(
        resumed.iter().filter(|r| r.cached).count(),
        7,
        "seven points come from the checkpoint"
    );
    assert!(!resumed[4].cached, "the re-run point is not cached");
    for (r, s) in resumed.iter().zip(&reference) {
        assert_eq!(r.label, s.label, "submission order survives resume");
        assert_reports_identical(r.expect_ok(), s.expect_ok());
    }

    // A second resume finds the now-complete file: nothing executes.
    let executed = AtomicUsize::new(0);
    let replayed = run_counted(
        eight_points(),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..opts(2)
        },
        &executed,
    );
    assert_eq!(executed.load(Ordering::SeqCst), 0);
    assert!(replayed.iter().all(|r| r.cached));
    for (r, s) in replayed.iter().zip(&reference) {
        assert_reports_identical(r.expect_ok(), s.expect_ok());
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_reruns_points_whose_configuration_changed() {
    let path = scratch_checkpoint("fingerprint");
    let _ = std::fs::remove_file(&path);

    let executed = AtomicUsize::new(0);
    run_counted(
        eight_points(),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            ..opts(1)
        },
        &executed,
    );
    assert_eq!(executed.load(Ordering::SeqCst), 8);

    // Same labels, but point 2's design changed: its fingerprint no
    // longer matches the checkpoint entry, so a stale result must never
    // be served for it.
    let mut points = eight_points();
    points[2].config.cores[0].translation.private = TlbConfig::private(64);
    let executed = AtomicUsize::new(0);
    let results = run_counted(
        points,
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..opts(1)
        },
        &executed,
    );
    assert_eq!(
        executed.load(Ordering::SeqCst),
        1,
        "only the edited point re-runs"
    );
    assert!(!results[2].cached);
    assert!(results
        .iter()
        .enumerate()
        .all(|(i, r)| r.cached == (i != 2)));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_points_are_not_persisted_and_rerun_on_resume() {
    use gemmini_core::AccelError;
    let path = scratch_checkpoint("failed_points");
    let _ = std::fs::remove_file(&path);

    // Six labelled points; "accel" fails with a typed error, "panic"
    // panics. Both failure shapes must leave no checkpoint entry.
    let items = |fail: bool| -> Vec<(String, u64, u64)> {
        (0..6)
            .map(|i| {
                let label = match i {
                    2 => "accel".to_string(),
                    4 => "panic".to_string(),
                    _ => format!("ok{i}"),
                };
                (label, i, if fail { i } else { 100 + i })
            })
            .collect()
    };
    let executed = AtomicUsize::new(0);
    let first = sweep_map_checkpointed(
        items(true),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            ..opts(2)
        },
        |i| {
            executed.fetch_add(1, Ordering::SeqCst);
            match i {
                2 => Err(AccelError::NoPreload),
                4 => panic!("deliberate point failure"),
                _ => Ok(i * 10),
            }
        },
    );
    assert_eq!(executed.load(Ordering::SeqCst), 6);
    assert!(matches!(first[2].outcome, Err(SweepError::Accel(_))));
    assert!(matches!(first[4].outcome, Err(SweepError::Panicked(_))));

    let on_disk: Checkpoint<u64> = Checkpoint::load(&path).expect("checkpoint loads");
    assert_eq!(on_disk.len(), 4, "failed points must not be persisted");
    assert!(on_disk.lookup("accel", 2).is_none());
    assert!(on_disk.lookup("panic", 4).is_none());

    // Resume with the failures fixed (same labels and fingerprints, a
    // healthy closure): exactly the two failed points re-run.
    let executed = AtomicUsize::new(0);
    let resumed = sweep_map_checkpointed(
        items(true),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..opts(2)
        },
        |i| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(i * 10)
        },
    );
    assert_eq!(
        executed.load(Ordering::SeqCst),
        2,
        "only the failed points re-run on resume"
    );
    assert!(resumed
        .iter()
        .enumerate()
        .all(|(i, r)| r.cached == (i != 2 && i != 4)));
    assert!(resumed.iter().all(|r| r.outcome.is_ok()));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn reported_wall_is_the_persisted_pure_simulation_wall() {
    let path = scratch_checkpoint("wall");
    let _ = std::fs::remove_file(&path);

    let items: Vec<(String, u64, u64)> = (0..4).map(|i| (format!("p{i}"), i, i)).collect();
    let fresh = sweep_map_checkpointed(
        items.clone(),
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            ..opts(2)
        },
        |i| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(i)
        },
    );

    // The wall each result reports must be exactly the wall persisted in
    // its checkpoint line — the pure simulation time, measured once.
    // (Before the fix, the returned wall also included JSON encoding and
    // the flushed append, so a run and its cached replay disagreed.)
    let on_disk: Checkpoint<u64> = Checkpoint::load(&path).expect("checkpoint loads");
    for r in &fresh {
        let entry = on_disk
            .lookup(&r.label, r.outcome.as_ref().copied().unwrap())
            .unwrap();
        assert_eq!(
            r.wall, entry.wall,
            "returned wall must equal persisted wall for '{}'",
            r.label
        );
    }

    // A cached replay serves the identical wall.
    let replay = sweep_map_checkpointed(
        items,
        SweepOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..opts(2)
        },
        |_: u64| -> Result<u64, gemmini_core::AccelError> {
            panic!("nothing may execute on a full-checkpoint replay")
        },
    );
    for (r, f) in replay.iter().zip(&fresh) {
        assert!(r.cached);
        assert_eq!(r.wall, f.wall, "cached replay must report the same wall");
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn repeated_resume_cycles_do_not_grow_the_checkpoint() {
    let path = scratch_checkpoint("compaction");
    let _ = std::fs::remove_file(&path);

    let n = 5usize;
    let line_count = |path: &PathBuf| -> usize {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    };

    // Each cycle uses new fingerprints, so every point re-runs and
    // appends a shadowing entry. Completion must compact the file back
    // to one line per label; without compaction cycle `c` would leave
    // `c * n` lines.
    for cycle in 0..3u64 {
        let items: Vec<(String, u64, u64)> =
            (0..n).map(|i| (format!("p{i}"), cycle, i as u64)).collect();
        let results = sweep_map_checkpointed(
            items,
            SweepOptions {
                checkpoint: Some(path.clone()),
                resume: cycle > 0,
                ..opts(1)
            },
            |i| Ok(i + cycle),
        );
        assert!(results.iter().all(|r| !r.cached), "new fingerprints re-run");
        assert_eq!(
            line_count(&path),
            n,
            "cycle {cycle} must leave exactly one line per label"
        );
    }

    // The surviving lines are the latest cycle's entries.
    let on_disk: Checkpoint<u64> = Checkpoint::load(&path).expect("checkpoint loads");
    assert_eq!(on_disk.len(), n);
    for i in 0..n {
        assert_eq!(
            on_disk.lookup(&format!("p{i}"), 2).unwrap().payload,
            i as u64 + 2
        );
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn env_var_resolves_worker_count() {
    use gemmini_soc::sweep::{worker_count, THREADS_ENV};
    // This test owns the env var; explicit `threads` arguments elsewhere
    // bypass it, so the mutation cannot race with the other tests.
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(worker_count(0, 8), 3);
    std::env::set_var(THREADS_ENV, "1");
    assert_eq!(worker_count(0, 8), 1);
    std::env::set_var(THREADS_ENV, "not-a-number");
    let fallback = worker_count(0, 64);
    assert!(fallback >= 1);
    std::env::remove_var(THREADS_ENV);
    assert!(worker_count(0, 64) >= 1);
    // Explicit argument always wins over the environment.
    std::env::set_var(THREADS_ENV, "7");
    assert_eq!(worker_count(2, 64), 2);
    std::env::remove_var(THREADS_ENV);
}
