//! Integration tests for the parallel design-space sweep executor:
//! scheduling must never change results (bit-identical reports between
//! serial and parallel execution), one point's failure must never take
//! down the sweep, and worker overlap must actually happen.

use std::time::{Duration, Instant};

use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_soc::run::{RunOptions, SocReport};
use gemmini_soc::sweep::{
    merge_memory_stats, run_sweep_with, sweep_map, DesignPoint, SweepError, SweepOptions,
};
use gemmini_soc::SocConfig;
use gemmini_vm::tlb::TlbConfig;

fn small_net(m: usize, k: usize, n: usize) -> Network {
    let mut net = Network::new(format!("mm_{m}x{k}x{n}"));
    net.push(
        "fc1",
        Layer::Matmul {
            m,
            k,
            n,
            activation: Activation::Relu,
        },
    );
    net.push(
        "fc2",
        Layer::Matmul {
            m,
            k: n,
            n: 8,
            activation: Activation::None,
        },
    );
    net
}

/// An 8-point sweep shaped like the figure sweeps: varying network
/// dimensions and private-TLB sizes on the edge SoC.
fn eight_points() -> Vec<DesignPoint> {
    let dims = [(16, 32, 16), (24, 16, 8), (8, 48, 24), (32, 32, 32)];
    let tlbs = [4u32, 16];
    let mut points = Vec::new();
    for &(m, k, n) in &dims {
        for &entries in &tlbs {
            let mut cfg = SocConfig::edge_single_core();
            cfg.cores[0].translation.private = TlbConfig::private(entries);
            points.push(DesignPoint::new(
                format!("mm {m}x{k}x{n} tlb={entries}"),
                cfg,
                vec![small_net(m, k, n)],
                RunOptions::timing(),
            ));
        }
    }
    points
}

fn opts(threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        progress: false,
    }
}

fn assert_reports_identical(a: &SocReport, b: &SocReport) {
    assert_eq!(a.cores.len(), b.cores.len());
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(
            ca.total_cycles, cb.total_cycles,
            "cycles must not depend on scheduling"
        );
        assert_eq!(ca.macs, cb.macs);
        assert_eq!(ca.translation.requests, cb.translation.requests);
        assert_eq!(ca.translation.walks, cb.translation.walks);
        assert_eq!(ca.translation.filter_hits, cb.translation.filter_hits);
        let la: Vec<_> = ca.layers.iter().map(|l| (&l.name, l.cycles)).collect();
        let lb: Vec<_> = cb.layers.iter().map(|l| (&l.name, l.cycles)).collect();
        assert_eq!(la, lb);
    }
    assert_eq!(a.l2_stats, b.l2_stats, "L2 counters must be bit-identical");
    assert_eq!(
        a.dram_traffic, b.dram_traffic,
        "DRAM counters must be bit-identical"
    );
    assert_eq!(a.dram_bytes, b.dram_bytes);
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_sweep_with(eight_points(), opts(1));
    let parallel = run_sweep_with(eight_points(), opts(4));
    assert_eq!(serial.len(), 8);
    assert_eq!(parallel.len(), 8);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "results must keep submission order");
        assert_reports_identical(s.expect_ok(), p.expect_ok());
    }
    // The exact cross-point rollup is scheduling-independent too.
    let rs = merge_memory_stats(serial.iter().filter_map(|r| r.ok()));
    let rp = merge_memory_stats(parallel.iter().filter_map(|r| r.ok()));
    assert_eq!(rs.l2, rp.l2);
    assert_eq!(rs.dram, rp.dram);
    assert_eq!(rs.reports, 8);
}

#[test]
fn panicking_point_is_an_err_entry_and_others_complete() {
    let mut points = eight_points();
    // run_networks panics when the network count does not match the
    // core count — a realistic misconfigured design point.
    points[3] = DesignPoint::new(
        "misconfigured",
        SocConfig::edge_single_core(),
        vec![small_net(8, 8, 8), small_net(8, 8, 8)],
        RunOptions::timing(),
    );
    let results = run_sweep_with(points, opts(4));
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        if i == 3 {
            assert_eq!(r.label, "misconfigured");
            match &r.outcome {
                Err(SweepError::Panicked(msg)) => {
                    assert!(
                        msg.contains("one network per core"),
                        "panic message should survive: {msg}"
                    );
                }
                other => panic!("expected panicked entry, got {other:?}"),
            }
        } else {
            assert!(
                r.outcome.is_ok(),
                "point {} must complete despite the failure: {:?}",
                r.label,
                r.outcome
            );
        }
    }
}

#[test]
fn workers_overlap_waiting_points() {
    // Sleep-based tasks prove the pool genuinely overlaps work even on
    // a single-CPU host (sleeps need no core to overlap): 8 x 50 ms
    // serially is 400 ms, but four workers finish in ~100 ms.
    let items: Vec<(String, u64)> = (0..8).map(|i| (format!("p{i}"), i)).collect();
    let start = Instant::now();
    let results = sweep_map(items, opts(4), |i| {
        std::thread::sleep(Duration::from_millis(50));
        Ok(i)
    });
    let wall = start.elapsed();
    assert_eq!(results.len(), 8);
    assert!(
        wall < Duration::from_millis(300),
        "4 workers over 8 x 50ms points must beat 300ms, took {wall:?}"
    );
}

#[test]
fn serial_mode_runs_on_caller_thread() {
    // threads=1 must not spawn: the closure observes the caller's
    // thread id for every point.
    let caller = std::thread::current().id();
    let items: Vec<(String, ())> = (0..4).map(|i| (format!("p{i}"), ())).collect();
    let results = sweep_map(items, opts(1), |_| {
        assert_eq!(std::thread::current().id(), caller);
        Ok(())
    });
    assert!(results.iter().all(|r| r.outcome.is_ok()));
}

#[test]
fn env_var_resolves_worker_count() {
    use gemmini_soc::sweep::{worker_count, THREADS_ENV};
    // This test owns the env var; explicit `threads` arguments elsewhere
    // bypass it, so the mutation cannot race with the other tests.
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(worker_count(0, 8), 3);
    std::env::set_var(THREADS_ENV, "1");
    assert_eq!(worker_count(0, 8), 1);
    std::env::set_var(THREADS_ENV, "not-a-number");
    let fallback = worker_count(0, 64);
    assert!(fallback >= 1);
    std::env::remove_var(THREADS_ENV);
    assert!(worker_count(0, 64) >= 1);
    // Explicit argument always wins over the environment.
    std::env::set_var(THREADS_ENV, "7");
    assert_eq!(worker_count(2, 64), 2);
    std::env::remove_var(THREADS_ENV);
}
