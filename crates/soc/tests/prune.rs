//! Soundness tests for attribution-guided sweep pruning
//! (`gemmini_soc::prune`), the headline guarantee being twofold:
//!
//! 1. **Subset bit-identity** — every point the pruned sweep actually
//!    runs produces a report bit-identical to the same point in the
//!    full, unpruned sweep. Pruning only removes work; it never
//!    re-orders or re-parameterizes what does run.
//! 2. **Evidence audit** — force-running every pruned point (which the
//!    full sweep does) shows its dominant cycle bucket equals the one
//!    recorded in the prune evidence, and its total cycle count lies
//!    within the evidence's declared tolerance of the predicted
//!    (basis) total.
//!
//! Failures print the offending point's full attribution so a broken
//! axis-insensitivity rule is debuggable from the test log alone.

use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_mem::json::ToJson;
use gemmini_mem::stats::SweepAxis;
use gemmini_soc::run::{RunOptions, SocReport};
use gemmini_soc::sweep::{run_sweep_with, DesignPoint, SweepOptions, SweepResult};
use gemmini_soc::{PrunePolicy, SocConfig};
use gemmini_vm::tlb::TlbConfig;
use proptest::prelude::*;

/// The shared-L2-TLB settings each group sweeps (`0` = none); the basis
/// is the no-L2 point — axis-pessimal, the most stall-prone setting —
/// mirroring the fig8 policy shape. The private TLB stays fixed and
/// tiny so the basis actually feels translation pressure.
const SHARED_TLBS: [u32; 3] = [0, 64, 256];

fn small_net(m: usize, k: usize, n: usize) -> Network {
    let mut net = Network::new(format!("mm_{m}x{k}x{n}"));
    net.push(
        "fc1",
        Layer::Matmul {
            m,
            k,
            n,
            activation: Activation::Relu,
        },
    );
    net.push(
        "fc2",
        Layer::Matmul {
            m,
            k: n,
            n: 8,
            activation: Activation::None,
        },
    );
    net
}

fn label(m: usize, k: usize, n: usize, filters: bool, shared: u32) -> String {
    format!("mm {m}x{k}x{n} filters={filters} shared={shared}")
}

/// A grid shaped like the figure sweeps: one TLB-axis group per
/// (dims, filters) pair, submitted in group-member order so slot
/// indices line up between the full and the pruned sweep.
fn grid(dims: &[(usize, usize, usize)], tolerance: f64) -> (Vec<DesignPoint>, PrunePolicy) {
    let mut points = Vec::new();
    let mut policy = PrunePolicy::new(SweepAxis::TlbEntries, tolerance);
    for &(m, k, n) in dims {
        for filters in [false, true] {
            for shared in SHARED_TLBS {
                let mut cfg = SocConfig::edge_single_core();
                cfg.cores[0].translation.private = TlbConfig::private(2);
                cfg.cores[0].translation.shared = TlbConfig::shared(shared);
                cfg.cores[0].translation.filter_registers = filters;
                points.push(DesignPoint::new(
                    label(m, k, n, filters, shared),
                    cfg,
                    vec![small_net(m, k, n)],
                    RunOptions::timing(),
                ));
            }
            policy = policy.group(
                label(m, k, n, filters, SHARED_TLBS[0]),
                SHARED_TLBS[1..]
                    .iter()
                    .map(|&s| label(m, k, n, filters, s))
                    .collect::<Vec<_>>(),
            );
        }
    }
    (points, policy)
}

fn opts(prune: Option<PrunePolicy>) -> SweepOptions {
    SweepOptions {
        threads: 2,
        progress: false,
        prune,
        ..SweepOptions::default()
    }
}

fn attribution_rows(report: &SocReport) -> String {
    report
        .attribution
        .rows()
        .iter()
        .map(|(name, cycles)| format!("{name}={cycles}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Checks both soundness invariants of one (full, pruned) sweep pair;
/// returns how many points were pruned, or the first violation as text.
fn audit(
    full: &[SweepResult<SocReport>],
    pruned: &[SweepResult<SocReport>],
) -> Result<usize, String> {
    assert_eq!(full.len(), pruned.len());
    let mut skips = 0;
    for (f, p) in full.iter().zip(pruned) {
        assert_eq!(f.label, p.label);
        let real = f.expect_ok();
        match &p.pruned {
            None => {
                // Subset bit-identity: the executed report must match
                // the full sweep's, down to its JSON encoding.
                if real.to_json().encode() != p.expect_ok().to_json().encode() {
                    return Err(format!(
                        "'{}' ran under pruning but differs from the full sweep\n  full: {}",
                        f.label,
                        attribution_rows(real)
                    ));
                }
            }
            Some(ev) => {
                skips += 1;
                let predicted = p.expect_ok();
                if real.attribution.dominant() != ev.dominant {
                    return Err(format!(
                        "'{}': dominant bucket moved under the swept axis: evidence says {}, \
                         force-run says {}\n  evidence: {}\n  force-run: {}",
                        p.label,
                        ev.dominant.name(),
                        real.attribution.dominant().name(),
                        ev.rule(),
                        attribution_rows(real)
                    ));
                }
                let want = predicted.attribution.total() as f64;
                let got = real.attribution.total() as f64;
                let err = (got - want).abs() / want;
                if err > ev.tolerance {
                    return Err(format!(
                        "'{}': predicted {want} cycles, force-run {got} ({:.2}% off > {:.2}% \
                         tolerance)\n  evidence: {}\n  force-run: {}",
                        p.label,
                        err * 100.0,
                        ev.tolerance * 100.0,
                        ev.rule(),
                        attribution_rows(real)
                    ));
                }
            }
        }
    }
    Ok(skips)
}

/// A deterministic compute-bound grid must actually prune (every basis
/// is matmul-dominated with a tiny tlb-stall share) and pass the audit.
#[test]
fn compute_bound_grid_prunes_and_stays_sound() {
    let (points, policy) = grid(&[(96, 96, 96), (80, 64, 80)], 0.25);
    let full = run_sweep_with(points.clone(), opts(None));
    let pruned = run_sweep_with(points, opts(Some(policy)));
    let skips = audit(&full, &pruned).unwrap_or_else(|msg| panic!("{msg}"));
    assert!(
        skips > 0,
        "a generous 25% tolerance must prune at least one member of a compute-bound grid"
    );
    // Bases are never predicted.
    for p in &pruned {
        if let Some(ev) = &p.pruned {
            let basis = pruned
                .iter()
                .find(|r| r.label == ev.basis_label)
                .expect("evidence names a grid point");
            assert!(basis.pruned.is_none(), "a basis must be simulated");
        }
    }
}

/// A zero tolerance can never prune: any nonzero movable fraction
/// exceeds it, so the pruned sweep degenerates to the full sweep.
#[test]
fn zero_tolerance_runs_everything() {
    let (points, policy) = grid(&[(16, 24, 16)], 0.0);
    let full = run_sweep_with(points.clone(), opts(None));
    let pruned = run_sweep_with(points, opts(Some(policy)));
    let skips = audit(&full, &pruned).unwrap_or_else(|msg| panic!("{msg}"));
    assert_eq!(skips, 0, "zero tolerance must simulate every point");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random grids and tolerances: whatever the policy decides, the
    /// executed subset is bit-identical to the full sweep and every
    /// prune decision survives its force-run audit.
    #[test]
    fn pruning_is_sound_on_random_grids(
        m in 4usize..32,
        k in 4usize..48,
        n in 4usize..32,
        m2 in 4usize..24,
        k2 in 4usize..32,
        n2 in 4usize..24,
        tolerance in prop::sample::select(vec![0.01, 0.05, 0.25, 0.75]),
    ) {
        let (points, policy) = grid(&[(m, k, n), (m2, k2, n2)], tolerance);
        let full = run_sweep_with(points.clone(), opts(None));
        let pruned = run_sweep_with(points, opts(Some(policy)));
        if let Err(msg) = audit(&full, &pruned) {
            prop_assert!(false, "{}", msg);
        }
    }
}
