//! End-to-end functional test of a MobileNetV2-style inverted-residual
//! block — the depthwise path through the full runtime (expand 1×1 →
//! depthwise 3×3 → project 1×1 → residual add), with and without the
//! im2col block, checked bit-for-bit against the golden model.

use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::runtime::reference_forward;
use gemmini_soc::soc::SocConfig;

fn inverted_residual_block() -> Network {
    let (c, hw, t) = (4usize, 6usize, 3usize);
    let mid = c * t;
    let mut net = Network::new("inv_residual");
    net.push(
        "expand",
        Layer::Conv {
            in_channels: c,
            out_channels: mid,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (hw, hw),
            activation: Activation::Relu6,
        },
    );
    net.push(
        "dw",
        Layer::DwConv {
            channels: mid,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (hw, hw),
            activation: Activation::Relu6,
        },
    );
    net.push(
        "project",
        Layer::Conv {
            in_channels: mid,
            out_channels: c,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (hw, hw),
            activation: Activation::None,
        },
    );
    net.push(
        "skip",
        Layer::ResAdd {
            elements: c * hw * hw,
        },
    );
    net
}

#[test]
fn inverted_residual_is_bit_exact_with_im2col_unit() {
    let net = inverted_residual_block();
    let opts = RunOptions::functional();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &opts,
    )
    .unwrap();
    assert_eq!(
        report.cores[0].output.as_ref().unwrap(),
        &reference_forward(&net, opts.seed)
    );
}

#[test]
fn inverted_residual_is_bit_exact_with_cpu_im2col() {
    let net = inverted_residual_block();
    let mut cfg = SocConfig::edge_single_core();
    cfg.cores[0].accel.has_im2col = false;
    let opts = RunOptions::functional();
    let report = run_networks(&cfg, std::slice::from_ref(&net), &opts).unwrap();
    assert_eq!(
        report.cores[0].output.as_ref().unwrap(),
        &reference_forward(&net, opts.seed)
    );
}

#[test]
fn depthwise_utilization_is_poor() {
    // The paper's MobileNet observation: depthwise layers map badly onto
    // the spatial array. The dw layer's achieved MACs/cycle must be far
    // below a dense conv's at similar sizes.
    let net = inverted_residual_block();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &RunOptions::timing(),
    )
    .unwrap();
    let core = &report.cores[0];
    let find = |name: &str| {
        core.layers
            .iter()
            .find(|l| l.name == name)
            .expect("layer exists")
    };
    let dw = find("dw");
    let expand = find("expand");
    // MACs per cycle for each layer.
    let dw_rate = net.layers()[1].layer.macs() as f64 / dw.cycles as f64;
    let expand_rate = net.layers()[0].layer.macs() as f64 / expand.cycles as f64;
    assert!(
        dw_rate < expand_rate,
        "depthwise ({dw_rate:.2} MACs/cy) must be less efficient than dense ({expand_rate:.2} MACs/cy)"
    );
}

#[test]
fn strided_depthwise_is_bit_exact() {
    // MobileNet's downsampling blocks use stride-2 depthwise convs.
    let mut net = Network::new("dw_stride2");
    net.push(
        "dw",
        Layer::DwConv {
            channels: 6,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_hw: (8, 8),
            activation: Activation::None,
        },
    );
    let opts = RunOptions::functional();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &opts,
    )
    .unwrap();
    assert_eq!(
        report.cores[0].output.as_ref().unwrap(),
        &reference_forward(&net, opts.seed)
    );
}
