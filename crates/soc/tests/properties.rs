//! Property-based tests for the software stack: tiling invariants and
//! functional equivalence of the full instruction-level path against the
//! golden model on randomized small networks.

use gemmini_core::config::GemminiConfig;
use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::runtime::reference_forward;
use gemmini_soc::soc::SocConfig;
use gemmini_soc::tiling::plan_matmul;
use proptest::prelude::*;

proptest! {
    /// The tile planner always returns a plan that fits, never exceeds the
    /// problem's own block counts, and covers at least one block per axis.
    #[test]
    fn plans_fit_and_are_sane(
        m in 1usize..5000,
        k in 1usize..5000,
        n in 1usize..5000,
        sp_kb in prop::sample::select(vec![64usize, 128, 256, 512]),
        acc_kb in prop::sample::select(vec![16usize, 64, 256, 512]),
    ) {
        let cfg = GemminiConfig {
            sp_capacity_kb: sp_kb,
            acc_capacity_kb: acc_kb,
            ..GemminiConfig::edge()
        };
        let plan = plan_matmul(&cfg, m, k, n);
        prop_assert!(plan.fits(&cfg));
        prop_assert!(plan.tm >= 1 && plan.tk >= 1 && plan.tn >= 1);
        let dim = cfg.dim();
        prop_assert!(plan.tm <= m.div_ceil(dim));
        prop_assert!(plan.tk <= k.div_ceil(dim));
        prop_assert!(plan.tn <= n.div_ceil(dim));
    }

    /// Growing the scratchpad never shrinks the chosen tile volume.
    #[test]
    fn bigger_scratchpad_never_shrinks_tiles(m in 64usize..4096, k in 64usize..4096, n in 64usize..4096) {
        let small = GemminiConfig::edge();
        let big = GemminiConfig { sp_capacity_kb: 512, acc_capacity_kb: 512, ..GemminiConfig::edge() };
        let ps = plan_matmul(&small, m, k, n);
        let pb = plan_matmul(&big, m, k, n);
        prop_assert!(pb.tm * pb.tk + pb.tk * pb.tn >= ps.tm * ps.tk + ps.tk * ps.tn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized two-layer matmul networks: the instruction-level
    /// simulator's output equals the golden model bit-for-bit.
    #[test]
    fn random_matmul_networks_are_bit_exact(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        n2 in 1usize..20,
        relu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new("prop_mm");
        net.push("fc1", Layer::Matmul {
            m,
            k,
            n,
            activation: if relu { Activation::Relu } else { Activation::None },
        });
        net.push("fc2", Layer::Matmul { m, k: n, n: n2, activation: Activation::None });
        let opts = RunOptions { functional: true, seed };
        let report = run_networks(&SocConfig::edge_single_core(), std::slice::from_ref(&net), &opts).unwrap();
        let want = reference_forward(&net, seed);
        prop_assert_eq!(report.cores[0].output.as_ref().unwrap(), &want);
    }

    /// Randomized tiny conv networks (with and without the im2col block)
    /// stay bit-exact.
    #[test]
    fn random_conv_networks_are_bit_exact(
        c_in in 1usize..5,
        c_out in 1usize..6,
        hw in 4usize..10,
        ksz in prop::sample::select(vec![1usize, 3]),
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new("prop_conv");
        net.push("conv", Layer::Conv {
            in_channels: c_in,
            out_channels: c_out,
            kernel: ksz,
            stride: 1,
            padding: ksz / 2,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        });
        net.push("skip", Layer::ResAdd { elements: c_out * hw * hw });
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel.has_im2col = unit;
        let opts = RunOptions { functional: true, seed };
        let report = run_networks(&cfg, std::slice::from_ref(&net), &opts).unwrap();
        let want = reference_forward(&net, seed);
        prop_assert_eq!(report.cores[0].output.as_ref().unwrap(), &want);
    }
}
