//! Property-based tests for the software stack: tiling invariants,
//! functional equivalence of the full instruction-level path against the
//! golden model on randomized small networks, the merge algebra behind
//! sharded sweep rollups, and lossless JSON round-tripping of the report
//! types the checkpoint files persist.

use gemmini_core::config::GemminiConfig;
use gemmini_core::dma::DmaStats;
use gemmini_dnn::graph::{Activation, Layer, LayerClass, Network};
use gemmini_mem::json::{FromJson, Json, ToJson};
use gemmini_mem::stats::{CycleAttribution, HitMissStats, TrafficStats};
use gemmini_soc::run::{
    run_networks, CoreReport, L2Report, LayerReport, RunOptions, SocReport, TranslationReport,
};
use gemmini_soc::runtime::reference_forward;
use gemmini_soc::soc::SocConfig;
use gemmini_soc::sweep::MemoryRollup;
use gemmini_soc::tiling::plan_matmul;
use proptest::prelude::*;

/// A rate-like fraction derived from two counters — always finite, so
/// the JSON encoder (which rejects NaN/inf) accepts it, and always a
/// value the simulator could actually produce.
fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / (num as f64 + den as f64)
    }
}

fn rollup(hits: u64, misses: u64, wb: u64, rd: u64, wr: u64, reports: usize) -> MemoryRollup {
    let mut dram = TrafficStats::new();
    dram.record_read(rd);
    dram.record_write(wr);
    MemoryRollup {
        l2: HitMissStats::from_counts(hits, misses),
        l2_writebacks: wb,
        dram,
        reports,
    }
}

/// Builds an arbitrary-but-valid `SocReport` from a flat seed tuple:
/// every counter is exercised, rates are finite, and the optional
/// functional output covers both `None` and negative bytes.
#[allow(clippy::cast_possible_wrap)]
fn report_from_seed(cores: usize, base: u64, with_output: bool) -> SocReport {
    let classes = [
        LayerClass::Conv,
        LayerClass::Matmul,
        LayerClass::ResAdd,
        LayerClass::Pool,
        LayerClass::Norm,
    ];
    let core_reports: Vec<CoreReport> = (0..cores)
        .map(|c| {
            let b = base.wrapping_mul(c as u64 + 1);
            CoreReport {
                network: format!("net_{c}"),
                total_cycles: b.wrapping_mul(3),
                layers: classes
                    .iter()
                    .enumerate()
                    .map(|(i, &class)| LayerReport {
                        name: format!("layer_{i}\"\\ \u{2603}"), // escapes + unicode
                        class,
                        cycles: b.wrapping_add(i as u64),
                    })
                    .collect(),
                translation: TranslationReport {
                    requests: b,
                    private_hit_rate: rate(b, b / 2 + 1),
                    effective_hit_rate: rate(b, b / 3 + 1),
                    filter_hits: b / 7,
                    shared_hit_rate: rate(b / 2, b + 1),
                    walks: b / 5,
                    mean_walk_cycles: rate(b, 13) * 100.0,
                    consecutive_read_same_page: rate(b, 3),
                    consecutive_write_same_page: rate(b, 11),
                    miss_rate_series: (0..(b % 4))
                        .map(|i| (i * 1000, rate(i, b % 17 + 1)))
                        .collect(),
                },
                dma: DmaStats {
                    bytes_in: b.wrapping_mul(64),
                    bytes_out: b.wrapping_mul(16),
                    translations: b / 2,
                    translation_stall_cycles: b / 9,
                },
                macs: b.wrapping_mul(256),
                context_switches: b % 5,
                attribution: attribution_from_seed(b),
                output: with_output
                    .then(|| (0..(b % 20)).map(|i| (i as i8).wrapping_sub(10)).collect()),
            }
        })
        .collect();
    let mut attribution = CycleAttribution::new();
    for c in &core_reports {
        attribution.merge(&c.attribution);
    }
    SocReport {
        cores: core_reports,
        l2: L2Report {
            accesses: base,
            misses: base / 4,
            miss_rate: rate(base / 4, base.saturating_sub(base / 4) + 1),
            writebacks: base / 8,
        },
        dram_bytes: base.wrapping_mul(4096),
        l2_stats: HitMissStats::from_counts(base.saturating_sub(base / 4), base / 4),
        dram_traffic: {
            let mut t = TrafficStats::new();
            t.record_read(base.wrapping_mul(3));
            t.record_write(base);
            t
        },
        attribution,
    }
}

/// Derives a fully-populated attribution record from one seed counter.
/// Masked to 61 bits (still past f64's 53-bit integer range) so the
/// SoC-level fold of up to four cores cannot overflow a u64.
fn attribution_from_seed(b: u64) -> CycleAttribution {
    let b = b & ((1 << 61) - 1);
    CycleAttribution {
        compute: b,
        load: b / 2,
        store: b / 3,
        tlb_stall: b / 5,
        bank_conflict: b % 7,
        dram: b / 11,
        idle: b % 13,
    }
}

proptest! {
    /// The tile planner always returns a plan that fits, never exceeds the
    /// problem's own block counts, and covers at least one block per axis.
    #[test]
    fn plans_fit_and_are_sane(
        m in 1usize..5000,
        k in 1usize..5000,
        n in 1usize..5000,
        sp_kb in prop::sample::select(vec![64usize, 128, 256, 512]),
        acc_kb in prop::sample::select(vec![16usize, 64, 256, 512]),
    ) {
        let cfg = GemminiConfig {
            sp_capacity_kb: sp_kb,
            acc_capacity_kb: acc_kb,
            ..GemminiConfig::edge()
        };
        let plan = plan_matmul(&cfg, m, k, n);
        prop_assert!(plan.fits(&cfg));
        prop_assert!(plan.tm >= 1 && plan.tk >= 1 && plan.tn >= 1);
        let dim = cfg.dim();
        prop_assert!(plan.tm <= m.div_ceil(dim));
        prop_assert!(plan.tk <= k.div_ceil(dim));
        prop_assert!(plan.tn <= n.div_ceil(dim));
    }

    /// Growing the scratchpad never shrinks the chosen tile volume.
    #[test]
    fn bigger_scratchpad_never_shrinks_tiles(m in 64usize..4096, k in 64usize..4096, n in 64usize..4096) {
        let small = GemminiConfig::edge();
        let big = GemminiConfig { sp_capacity_kb: 512, acc_capacity_kb: 512, ..GemminiConfig::edge() };
        let ps = plan_matmul(&small, m, k, n);
        let pb = plan_matmul(&big, m, k, n);
        prop_assert!(pb.tm * pb.tk + pb.tk * pb.tn >= ps.tm * ps.tk + ps.tk * ps.tn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized two-layer matmul networks: the instruction-level
    /// simulator's output equals the golden model bit-for-bit.
    #[test]
    fn random_matmul_networks_are_bit_exact(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        n2 in 1usize..20,
        relu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new("prop_mm");
        net.push("fc1", Layer::Matmul {
            m,
            k,
            n,
            activation: if relu { Activation::Relu } else { Activation::None },
        });
        net.push("fc2", Layer::Matmul { m, k: n, n: n2, activation: Activation::None });
        let opts = RunOptions { functional: true, seed };
        let report = run_networks(&SocConfig::edge_single_core(), std::slice::from_ref(&net), &opts).unwrap();
        let want = reference_forward(&net, seed);
        prop_assert_eq!(report.cores[0].output.as_ref().unwrap(), &want);
    }

    /// Randomized tiny conv networks (with and without the im2col block)
    /// stay bit-exact.
    #[test]
    fn random_conv_networks_are_bit_exact(
        c_in in 1usize..5,
        c_out in 1usize..6,
        hw in 4usize..10,
        ksz in prop::sample::select(vec![1usize, 3]),
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new("prop_conv");
        net.push("conv", Layer::Conv {
            in_channels: c_in,
            out_channels: c_out,
            kernel: ksz,
            stride: 1,
            padding: ksz / 2,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        });
        net.push("skip", Layer::ResAdd { elements: c_out * hw * hw });
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel.has_im2col = unit;
        let opts = RunOptions { functional: true, seed };
        let report = run_networks(&cfg, std::slice::from_ref(&net), &opts).unwrap();
        let want = reference_forward(&net, seed);
        prop_assert_eq!(report.cores[0].output.as_ref().unwrap(), &want);
    }

    /// On randomized timing-mode matmul networks the attribution buckets
    /// partition the run exactly — they sum to `total_cycles` — and the
    /// SoC-level record is the fold of the per-core records.
    #[test]
    fn attribution_partitions_random_timing_runs(
        m in 1usize..48,
        k in 1usize..64,
        n in 1usize..48,
        relu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new("prop_attr");
        net.push("fc", Layer::Matmul {
            m,
            k,
            n,
            activation: if relu { Activation::Relu } else { Activation::None },
        });
        let opts = RunOptions { functional: false, seed };
        let report = run_networks(&SocConfig::edge_single_core(), &[net], &opts).unwrap();
        let core = &report.cores[0];
        prop_assert_eq!(core.attribution.total(), core.total_cycles);
        prop_assert!(core.attribution.busy() > 0);
        prop_assert_eq!(report.attribution, core.attribution);
    }
}

proptest! {
    /// `MemoryRollup::absorb` — the shard-merge primitive behind
    /// `merge_memory_stats` — is a commutative monoid: shards can be
    /// folded in any order or grouping and the totals match a
    /// single-process rollup exactly; the default (empty) rollup is the
    /// identity.
    #[test]
    fn memory_rollup_absorb_is_commutative_monoid(
        a in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0usize..1000),
        b in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0usize..1000),
        c in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0usize..1000),
    ) {
        let ra = rollup(a.0, a.1, a.2, a.3, a.4, a.5);
        let rb = rollup(b.0, b.1, b.2, b.3, b.4, b.5);
        let rc = rollup(c.0, c.1, c.2, c.3, c.4, c.5);
        // Commutativity.
        let mut ab = ra;
        ab.absorb(&rb);
        let mut ba = rb;
        ba.absorb(&ra);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab;
        ab_c.absorb(&rc);
        let mut bc = rb;
        bc.absorb(&rc);
        let mut a_bc = ra;
        a_bc.absorb(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Identity: absorbing the empty rollup changes nothing.
        let mut a_zero = ra;
        a_zero.absorb(&MemoryRollup::default());
        prop_assert_eq!(&a_zero, &ra);
    }

    /// `CycleAttribution::merge` is a commutative monoid, like the other
    /// sweep-rollup primitives: attribution from N shards can be folded
    /// in any order or grouping, and the zero record is the identity. The
    /// bucket sums also behave linearly: `total` of a merge is the sum of
    /// the inputs' totals.
    #[test]
    fn cycle_attribution_merge_is_commutative_monoid(
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let ra = attribution_from_seed(a);
        let rb = attribution_from_seed(b);
        let rc = attribution_from_seed(c);
        // Commutativity.
        let mut ab = ra;
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
        // Associativity.
        let mut ab_c = ab;
        ab_c.merge(&rc);
        let mut bc = rb;
        bc.merge(&rc);
        let mut a_bc = ra;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
        // Identity.
        let mut a_zero = ra;
        a_zero.merge(&CycleAttribution::new());
        prop_assert_eq!(a_zero, ra);
        // Totals are linear under merge (no cycle appears or vanishes).
        prop_assert_eq!(ab.total(), ra.total() + rb.total());
        // JSON round-trip, as persisted inside every checkpoint line.
        prop_assert_eq!(CycleAttribution::from_json(&ra.to_json()).unwrap(), ra);
    }

    /// `decode(encode(x)) == x` for `SocReport` — the exact unit the
    /// sweep checkpoint persists — over arbitrary core counts, counter
    /// values (including > 2^53, where f64 would lose bits), escaped
    /// strings, and present/absent functional output.
    #[test]
    fn soc_report_json_round_trip(
        cores in 0usize..4,
        base in any::<u64>(),
        with_output in any::<bool>(),
    ) {
        let report = report_from_seed(cores, base, with_output);
        // Value-level round trip.
        prop_assert_eq!(&SocReport::from_json(&report.to_json()).unwrap(), &report);
        // Text-level round trip, exactly as the checkpoint file stores it.
        let text = report.to_json().encode();
        prop_assert!(!text.contains('\n'), "checkpoint lines must be single-line");
        let reparsed = Json::parse(&text).unwrap();
        prop_assert_eq!(&SocReport::from_json(&reparsed).unwrap(), &report);
        // The canonical encoding is stable under re-encode.
        prop_assert_eq!(reparsed.encode(), text);
    }
}
