//! Chaos property test for the self-healing checkpoint substrate:
//! arbitrary byte-level damage to a checkpoint file — torn tails, bit
//! flips, dropped bytes — must never panic the loader, must quarantine
//! exactly the damaged lines (no more, no fewer), and a resume that
//! re-runs the lost points must converge to a file whose lines are
//! bit-identical to an undamaged run's.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gemmini_soc::checkpoint::{decode_line, Checkpoint, CheckpointEntry, CheckpointWriter, Line};
use proptest::prelude::*;

/// Deterministic entry for grid point `i`: the "simulation result" a
/// re-run would reproduce exactly (fixed wall so encodings are stable).
fn entry(i: u64) -> CheckpointEntry<u64> {
    CheckpointEntry {
        label: format!("pt{i}"),
        fingerprint: i.wrapping_mul(0x9E37_79B9),
        wall: Duration::from_micros(i * 37),
        payload: i.wrapping_mul(1_000_003),
        pruned: None,
    }
}

fn scratch_path() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gemmini_chaos_{}_{n}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write a clean checkpoint, damage it at an arbitrary byte, and
    /// check the full recovery cycle: load quarantines exactly the
    /// undecodable lines, a second load finds a clean file, and
    /// re-running the lost points restores a file whose line multiset is
    /// bit-identical to the pristine one.
    #[test]
    fn resume_survives_arbitrary_byte_damage(
        n in 3u64..12,
        mode in 0usize..3,
        pos_seed in any::<u64>(),
        val_seed in any::<u64>(),
    ) {
        let path = scratch_path();
        let sidecar = path.with_file_name(format!(
            "{}.bad",
            path.file_name().unwrap().to_str().unwrap()
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);

        // Pristine run: n entries, deterministic bytes.
        let writer = CheckpointWriter::create(&path).unwrap();
        for i in 0..n {
            writer.append(&entry(i)).unwrap();
        }
        drop(writer);
        let pristine = std::fs::read(&path).unwrap();

        // Damage the file at an arbitrary position.
        let mut bytes = pristine.clone();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        match mode {
            0 => bytes.truncate(pos),                                  // torn tail
            1 => bytes[pos] ^= 1 + (val_seed % 255) as u8,             // bit flip
            _ => { bytes.remove(pos); }                                // dropped byte
        }
        std::fs::write(&path, &bytes).unwrap();

        // Ground truth from the damaged bytes themselves: which physical
        // lines still decode? (A flip can split or merge lines, so the
        // expectation must come from the file, not from the damage site.)
        let damaged_text = String::from_utf8_lossy(&bytes).into_owned();
        let mut expect_good = Vec::new();
        let mut expect_bad = 0usize;
        for line in damaged_text.lines().filter(|l| !l.trim().is_empty()) {
            match decode_line::<u64>(line) {
                Ok(Line::Completed(e)) => expect_good.push(e.label),
                Ok(Line::Failed(_)) => unreachable!("no failed entries were written"),
                Err(_) => expect_bad += 1,
            }
        }

        // Resume-style load: never panics, quarantines exactly the
        // damaged lines, keeps exactly the intact ones.
        let (loaded, quarantine) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        prop_assert_eq!(quarantine.lines, expect_bad);
        prop_assert_eq!(quarantine.sidecar.is_some(), expect_bad > 0);
        prop_assert_eq!(std::fs::metadata(&sidecar).is_ok(), expect_bad > 0);
        let loaded_labels: Vec<String> =
            loaded.entries().iter().map(|e| e.label.clone()).collect();
        prop_assert_eq!(&loaded_labels, &expect_good);
        for e in loaded.entries() {
            let i: u64 = e.label[2..].parse().unwrap();
            prop_assert_eq!(e.payload, entry(i).payload);
        }

        // Exactly-once: a second load sees a fully clean file.
        let (reloaded, again) = Checkpoint::<u64>::load_quarantining(&path).unwrap();
        prop_assert_eq!(again.lines, 0);
        prop_assert_eq!(reloaded.entries().len(), expect_good.len());

        // "Resume" the sweep: re-run every point the damage lost and
        // append its (deterministic) result, as the executor would.
        let writer = CheckpointWriter::append_to(&path).unwrap();
        for i in 0..n {
            if !expect_good.iter().any(|l| l == &format!("pt{i}")) {
                writer.append(&entry(i)).unwrap();
            }
        }
        drop(writer);

        // The healed file holds the same line *bytes* as the pristine
        // run, merely reordered — sort both multisets and compare.
        let healed_text = std::fs::read_to_string(&path).unwrap();
        let mut healed: Vec<&str> = healed_text.lines().collect();
        let pristine_text = String::from_utf8(pristine).unwrap();
        let mut expected: Vec<&str> = pristine_text.lines().collect();
        healed.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(healed, expected);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
    }
}
