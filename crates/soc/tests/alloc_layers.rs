//! Layer-granular heap-allocation guard for the kernel/runtime stack —
//! the outward extension of `crates/core/tests/alloc_guard.rs`, which
//! pins the steady-state *tile* step at zero allocations.
//!
//! The runtime level cannot be zero-alloc: starting a layer legitimately
//! builds its tiling plan, stages NHWC/im2col patches, and materializes
//! functional tensors. What it must not do is allocate *more over time*:
//! every allocation should be a bounded, layer-scoped setup cost, not
//! something proportional to tile count or cycle count. This test drives
//! one network through `NetworkExecution::step` with a counting global
//! allocator, attributes every allocation to the layer that retired it,
//! and pins the per-layer counts two ways:
//!
//! * determinism — a second, identical execution on a fresh SoC must
//!   allocate exactly the same number of times per layer;
//! * ceilings — each layer's count must stay under a pinned bound taken
//!   from the current implementation. If a kernel change trips a bound,
//!   either stage through a retained buffer or consciously raise the pin
//!   in this file (and say why in the commit).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gemmini_core::MemCtx;
use gemmini_dnn::graph::{Activation, Layer, Network, PoolKind};
use gemmini_soc::kernel::{KernelEnv, StepOutcome};
use gemmini_soc::runtime::NetworkExecution;
use gemmini_soc::soc::Soc;
use gemmini_soc::SocConfig;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One layer of every class the runtime lowers differently: conv (NHWC
/// staging + im2col patch), pooling, residual add, a panel-packed
/// matmul, and a row-wise normalization.
fn net() -> Network {
    let mut net = Network::new("alloc_layers");
    net.push(
        "conv",
        Layer::Conv {
            in_channels: 4,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (8, 8),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 2,
            stride: 2,
            padding: 0,
            channels: 8,
            in_hw: (8, 8),
        },
    );
    net.push("resadd", Layer::ResAdd { elements: 128 });
    net.push(
        "matmul",
        Layer::Matmul {
            m: 16,
            k: 8,
            n: 16,
            activation: Activation::None,
        },
    );
    net.push("norm", Layer::LayerNorm { rows: 16, cols: 16 });
    net
}

/// Runs `net()` to completion on a fresh functional SoC, returning each
/// layer's (name, allocations attributed to it). Setup (SoC build,
/// buffer placement, weight init) happens before counting starts.
fn allocations_per_layer() -> Vec<(String, u64)> {
    let config = SocConfig::edge_single_core();
    let mut soc = Soc::new(&config, true);
    let Soc {
        cores,
        mem,
        data,
        frames,
    } = &mut soc;
    let core = &mut cores[0];
    let mut exec = NetworkExecution::new(
        net(),
        core.accel.config().clone(),
        &mut core.space,
        frames,
        data.as_mut(),
        7,
    );

    let names: Vec<String> = exec
        .network()
        .layers()
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let mut counts: Vec<u64> = Vec::with_capacity(names.len());
    let mut before = ALLOCATIONS.load(Ordering::SeqCst);
    loop {
        let mut env = KernelEnv {
            accel: &mut core.accel,
            cpu: &core.cpu,
            ctx: MemCtx {
                space: &core.space,
                translation: &mut core.translation,
                mem,
                data: data.as_mut(),
                port: core.id,
            },
        };
        let outcome = exec.step(&mut env).expect("step succeeds");
        // A layer boundary: attribute everything since the last one to
        // the layer that just retired.
        while exec.timings().len() > counts.len() {
            let now = ALLOCATIONS.load(Ordering::SeqCst);
            counts.push(now - before);
            before = now;
        }
        if matches!(outcome, StepOutcome::Done) {
            break;
        }
    }
    assert!(exec.is_finished());
    assert_eq!(counts.len(), names.len(), "one count per layer");
    names.into_iter().zip(counts).collect()
}

#[test]
fn per_layer_allocation_counts_are_deterministic_and_pinned() {
    // The counter must be live, or everything below is vacuous.
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > 0,
        "counting allocator not installed"
    );

    let first = allocations_per_layer();
    let second = allocations_per_layer();
    assert_eq!(
        first, second,
        "identical executions must allocate identically per layer"
    );

    // Pinned ceilings: the measured per-layer counts of the current
    // kernel/runtime implementation, with no headroom. A layer that
    // starts allocating per tile will blow far past these; a layer that
    // adds one setup buffer trips them by one, which is exactly the
    // review conversation this guard exists to force.
    let ceilings: &[(&str, u64)] = &[
        ("conv", 33),
        ("pool", 12),
        ("resadd", 4),
        ("matmul", 3),
        ("norm", 3),
    ];
    assert_eq!(first.len(), ceilings.len());
    for ((name, got), (expect_name, ceiling)) in first.iter().zip(ceilings) {
        assert_eq!(name, expect_name);
        assert!(
            got <= ceiling,
            "layer '{name}' performed {got} heap allocations (pinned ceiling {ceiling}); \
             stage through a retained buffer or consciously raise the pin"
        );
    }
}
