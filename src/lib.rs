#![warn(missing_docs)]

//! Umbrella crate for the Gemmini (DAC 2021) reproduction.
//!
//! Re-exports the full stack so examples and integration tests can depend on
//! a single crate:
//!
//! * [`core`] — the accelerator generator (spatial array, ISA,
//!   local memories, DMA, execution engine).
//! * [`mem`] — shared L2 / DRAM / bus substrate.
//! * [`vm`] — page tables, TLBs, page-table walker, filter
//!   registers.
//! * [`cpu`] — Rocket/BOOM host-CPU timing models and scalar
//!   baselines.
//! * [`dnn`] — tensors, operators, graph IR and the model zoo.
//! * [`soc`] — full-SoC integration and the software stack
//!   (tiling, kernels, runtime).
//! * [`synth`] — analytical area/timing/power models.

pub use gemmini_core as core;
pub use gemmini_cpu as cpu;
pub use gemmini_dnn as dnn;
pub use gemmini_mem as mem;
pub use gemmini_soc as soc;
pub use gemmini_synth as synth;
pub use gemmini_vm as vm;
